#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace m2::net {
namespace {

struct Ping final : Payload {
  explicit Ping(std::size_t bytes = 100) : bytes_(bytes) {}
  std::size_t bytes_;
  std::uint32_t kind() const override { return 9001; }
  std::size_t wire_size() const override { return bytes_; }
  const char* name() const override { return "Ping"; }
};

NetworkConfig quiet_config() {
  NetworkConfig cfg;
  cfg.latency.jitter_sigma = 0;  // deterministic delays for exact asserts
  return cfg;
}

// ---------------------------------------------------------------------
// LatencyModel
// ---------------------------------------------------------------------

TEST(LatencyModel, SerializationMatchesBandwidth) {
  LatencyConfig cfg;
  cfg.bandwidth_gbps = 8.0;  // 1 GB/s
  LatencyModel model(cfg);
  // 1000 bytes at 1 GB/s = 1 microsecond.
  EXPECT_EQ(model.serialization(1000), 1 * sim::kMicrosecond);
}

TEST(LatencyModel, OneWayIncludesPropagationAndSize) {
  LatencyConfig cfg;
  cfg.propagation = 100 * sim::kMicrosecond;
  cfg.bandwidth_gbps = 8.0;
  cfg.jitter_sigma = 0;
  LatencyModel model(cfg);
  sim::Rng rng(1);
  EXPECT_EQ(model.one_way(1000, rng),
            100 * sim::kMicrosecond + 1 * sim::kMicrosecond);
}

TEST(LatencyModel, JitterSpreadsDelays) {
  LatencyConfig cfg;
  cfg.jitter_sigma = 0.3;
  LatencyModel model(cfg);
  sim::Rng rng(2);
  sim::Time lo = INT64_MAX, hi = 0;
  for (int i = 0; i < 1000; ++i) {
    const sim::Time d = model.one_way(0, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, cfg.propagation);
  EXPECT_GT(hi, cfg.propagation);
}

// ---------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------

TEST(Network, DeliversWithLatency) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 2);
  sim::Time arrival = -1;
  net.set_delivery(1, [&](const Envelope& env) {
    arrival = sim.now();
    EXPECT_EQ(env.from, 0u);
    EXPECT_EQ(env.to, 1u);
  });
  net.send(0, 1, make_payload<Ping>());
  sim.run();
  EXPECT_GT(arrival, 0);
  EXPECT_GE(arrival, quiet_config().latency.propagation);
}

TEST(Network, LoopbackIsImmediate) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 2);
  sim::Time arrival = -1;
  net.set_delivery(0, [&](const Envelope&) { arrival = sim.now(); });
  net.send(0, 0, make_payload<Ping>());
  sim.run();
  EXPECT_EQ(arrival, 0);
}

TEST(Network, BroadcastReachesEveryone) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 5);
  int received = 0;
  for (NodeId n = 0; n < 5; ++n)
    net.set_delivery(n, [&](const Envelope&) { ++received; });
  net.broadcast(2, make_payload<Ping>(), false);
  sim.run();
  EXPECT_EQ(received, 4);
  received = 0;
  net.broadcast(2, make_payload<Ping>(), true);
  sim.run();
  EXPECT_EQ(received, 5);
}

TEST(Network, NicSharedBandwidthSerializesEgress) {
  sim::Simulator sim;
  auto cfg = quiet_config();
  cfg.latency.bandwidth_gbps = 0.008;  // 1 MB/s: size dominates
  Network net(sim, cfg, 3);
  std::vector<sim::Time> arrivals;
  for (NodeId n = 1; n < 3; ++n)
    net.set_delivery(n, [&](const Envelope&) { arrivals.push_back(sim.now()); });
  // Two 10 kB messages from node 0 must serialize at its NIC.
  net.send(0, 1, make_payload<Ping>(10000));
  net.send(0, 2, make_payload<Ping>(10000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const sim::Time gap = std::abs(arrivals[1] - arrivals[0]);
  // Each message takes ~10 ms to serialize at 1 MB/s.
  EXPECT_GT(gap, 5 * sim::kMillisecond);
}

TEST(Network, BatchingCoalescesMessages) {
  sim::Simulator sim;
  auto cfg = quiet_config();
  cfg.batching = true;
  cfg.batch_window = 100 * sim::kMicrosecond;
  Network net(sim, cfg, 2);
  std::vector<sim::Time> arrivals;
  net.set_delivery(1, [&](const Envelope&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 10; ++i) net.send(0, 1, make_payload<Ping>());
  sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  // All arrive together (one batch, one flush).
  EXPECT_EQ(arrivals.front(), arrivals.back());
  EXPECT_EQ(net.counters(0).batches_sent, 1u);
}

TEST(Network, BatchFlushesAtMessageLimit) {
  sim::Simulator sim;
  auto cfg = quiet_config();
  cfg.batching = true;
  cfg.batch_max_messages = 4;
  cfg.latency.propagation = sim::kMicrosecond;  // arrival well inside window
  Network net(sim, cfg, 2);
  int received = 0;
  sim::Time first_arrival = -1;
  net.set_delivery(1, [&](const Envelope&) {
    if (received == 0) first_arrival = sim.now();
    ++received;
  });
  for (int i = 0; i < 4; ++i) net.send(0, 1, make_payload<Ping>());
  sim.run_until(cfg.batch_window / 2);
  // Limit reached: flushed before the window expired.
  EXPECT_EQ(received, 4);
  EXPECT_LT(first_arrival, cfg.batch_window);
}

TEST(Network, BatchFlushesAtByteLimit) {
  sim::Simulator sim;
  auto cfg = quiet_config();
  cfg.batching = true;
  cfg.batch_max_bytes = 1024;
  cfg.latency.propagation = sim::kMicrosecond;
  Network net(sim, cfg, 2);
  int received = 0;
  net.set_delivery(1, [&](const Envelope&) { ++received; });
  // Two 600-byte messages exceed the 1 KiB byte limit -> early flush.
  net.send(0, 1, make_payload<Ping>(600));
  net.send(0, 1, make_payload<Ping>(600));
  sim.run_until(cfg.batch_window / 2);
  EXPECT_EQ(received, 2);
}

TEST(Network, DuplicationDeliversTwice) {
  sim::Simulator sim;
  auto cfg = quiet_config();
  cfg.duplicate_probability = 1.0;
  Network net(sim, cfg, 2);
  int received = 0;
  net.set_delivery(1, [&](const Envelope&) { ++received; });
  net.send(0, 1, make_payload<Ping>());
  sim.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, LossDropsMessages) {
  sim::Simulator sim;
  auto cfg = quiet_config();
  cfg.loss_probability = 1.0;
  Network net(sim, cfg, 2);
  int received = 0;
  net.set_delivery(1, [&](const Envelope&) { ++received; });
  for (int i = 0; i < 20; ++i) net.send(0, 1, make_payload<Ping>());
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.counters(0).messages_dropped, 20u);
}

TEST(Network, PartitionBlocksAcrossGroups) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 4);
  std::vector<int> received(4, 0);
  for (NodeId n = 0; n < 4; ++n)
    net.set_delivery(n, [&received, n](const Envelope&) { ++received[n]; });
  net.partition({0, 1});
  net.broadcast(0, make_payload<Ping>(), false);
  sim.run();
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 0);
  EXPECT_EQ(received[3], 0);
  net.heal();
  net.broadcast(0, make_payload<Ping>(), false);
  sim.run();
  EXPECT_EQ(received[2], 1);
  EXPECT_EQ(received[3], 1);
}

TEST(Network, CrashedNodeNeitherSendsNorReceives) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 2);
  int received = 0;
  net.set_delivery(0, [&](const Envelope&) { ++received; });
  net.set_delivery(1, [&](const Envelope&) { ++received; });
  net.set_crashed(1, true);
  net.send(0, 1, make_payload<Ping>());
  net.send(1, 0, make_payload<Ping>());
  sim.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, CountersTrackTraffic) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 2);
  net.set_delivery(1, [](const Envelope&) {});
  net.send(0, 1, make_payload<Ping>(100));
  sim.run();
  EXPECT_EQ(net.counters(0).messages_sent, 1u);
  EXPECT_GE(net.counters(0).bytes_sent, 100u);
  EXPECT_EQ(net.counters(1).messages_delivered, 1u);
  EXPECT_EQ(net.bytes_by_kind().at("Ping"), net.counters(0).bytes_sent);
  net.reset_counters();
  EXPECT_EQ(net.counters(0).messages_sent, 0u);
}

TEST(Network, MessagesFromOnePairArriveInOrder) {
  sim::Simulator sim;
  NetworkConfig cfg;  // with jitter
  Network net(sim, cfg, 2);
  std::vector<std::size_t> sizes;
  net.set_delivery(1, [&](const Envelope& env) {
    sizes.push_back(env.payload->wire_size());
  });
  for (std::size_t i = 1; i <= 50; ++i) net.send(0, 1, make_payload<Ping>(i));
  sim.run();
  ASSERT_EQ(sizes.size(), 50u);
  // FIFO per link is guaranteed by the NIC serialization: leave times are
  // monotone, and arrival = leave + sampled propagation.
  // With jitter, arrivals could reorder; the protocols tolerate that, so
  // here we only check that nothing was lost.
}

// ---------------------------------------------------------------------
// Flat per-link tables (post-overhaul): the link state that used to live
// in std::maps keyed by (from, to) is now flat vectors indexed by
// from * n + to. These tests pin down the properties that indexing must
// preserve: per-link FIFO correction, per-link partition state, and
// per-node counter attribution.
// ---------------------------------------------------------------------

struct Tagged final : Payload {
  explicit Tagged(std::uint64_t tag) : tag_(tag) {}
  std::uint64_t tag_;
  std::uint32_t kind() const override { return 9002; }
  std::size_t wire_size() const override { return 64; }
  const char* name() const override { return "Tagged"; }
};

TEST(Network, FlatTablesKeepEveryLinkFifoUnderJitter) {
  sim::Simulator sim(7);
  NetworkConfig cfg;  // jitter on; fifo_links = true (default)
  cfg.batching = false;
  constexpr int kNodes = 5;
  Network net(sim, cfg, kNodes);
  // Tags increase per ordered pair; each link's arrivals must do the same.
  std::vector<std::uint64_t> last_tag(kNodes * kNodes, 0);
  std::vector<std::uint64_t> arrivals(kNodes * kNodes, 0);
  int inversions = 0;
  for (NodeId to = 0; to < kNodes; ++to)
    net.set_delivery(to, [&, to](const Envelope& env) {
      const auto& p = static_cast<const Tagged&>(*env.payload);
      std::uint64_t& prev = last_tag[env.from * kNodes + to];
      if (p.tag_ <= prev) ++inversions;
      prev = p.tag_;
      ++arrivals[env.from * kNodes + to];
    });
  constexpr int kRounds = 40;
  std::uint64_t tag = 0;
  for (int round = 0; round < kRounds; ++round)
    for (NodeId from = 0; from < kNodes; ++from)
      for (NodeId to = 0; to < kNodes; ++to)
        if (from != to) net.send(from, to, make_payload<Tagged>(++tag));
  sim.run();
  EXPECT_EQ(inversions, 0) << "a link delivered out of send order";
  for (NodeId from = 0; from < kNodes; ++from)
    for (NodeId to = 0; to < kNodes; ++to)
      if (from != to) {
        EXPECT_EQ(arrivals[from * kNodes + to],
                  static_cast<std::uint64_t>(kRounds))
            << "link " << from << "->" << to;
      }
}

TEST(Network, FlatTablesEnforcePartitionPerLink) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 4);
  std::vector<int> received(4, 0);
  for (NodeId n = 0; n < 4; ++n)
    net.set_delivery(n, [&received, n](const Envelope&) { ++received[n]; });

  net.partition({0, 1});  // {0,1} vs {2,3}
  for (NodeId from = 0; from < 4; ++from)
    for (NodeId to = 0; to < 4; ++to)
      if (from != to) net.send(from, to, make_payload<Ping>());
  sim.run();
  // Each node hears only from its partner inside the partition group.
  EXPECT_EQ(received, (std::vector<int>{1, 1, 1, 1}));
  // Cross-group sends were dropped and billed to the sender.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(net.counters(n).messages_dropped, 2u) << "node " << n;
    EXPECT_EQ(net.counters(n).messages_sent, 3u) << "node " << n;
  }

  net.heal();
  for (NodeId from = 0; from < 4; ++from)
    for (NodeId to = 0; to < 4; ++to)
      if (from != to) net.send(from, to, make_payload<Ping>());
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{4, 4, 4, 4}));
}

TEST(Network, FlatTablesAttributeCountersToTheRightNode) {
  sim::Simulator sim;
  Network net(sim, quiet_config(), 3);
  for (NodeId n = 0; n < 3; ++n) net.set_delivery(n, [](const Envelope&) {});
  // Asymmetric traffic: node 0 sends 5, node 1 sends 2, node 2 silent.
  for (int i = 0; i < 5; ++i) net.send(0, 2, make_payload<Ping>(10));
  for (int i = 0; i < 2; ++i) net.send(1, 0, make_payload<Ping>(10));
  sim.run();
  EXPECT_EQ(net.counters(0).messages_sent, 5u);
  EXPECT_EQ(net.counters(1).messages_sent, 2u);
  EXPECT_EQ(net.counters(2).messages_sent, 0u);
  EXPECT_EQ(net.counters(0).messages_delivered, 2u);
  EXPECT_EQ(net.counters(1).messages_delivered, 0u);
  EXPECT_EQ(net.counters(2).messages_delivered, 5u);
  const auto total = net.total_counters();
  EXPECT_EQ(total.messages_sent, 7u);
  EXPECT_EQ(total.messages_delivered, 7u);
  EXPECT_EQ(total.messages_dropped, 0u);
}

}  // namespace
}  // namespace m2::net
