#include <gtest/gtest.h>

#include <memory>

#include "m2paxos/ownership.hpp"
#include "test_util.hpp"

namespace m2::m2p {
namespace {

using test::cmd;

/// Shared-handle variant of test::cmd for the decision APIs.
CommandPtr cptr(NodeId proposer, std::uint64_t seq,
                core::ObjectList objects) {
  return std::make_shared<const Command>(cmd(proposer, seq, std::move(objects)));
}

TEST(OwnershipTable, UnknownObjectHasNoOwner) {
  OwnershipTable t;
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_FALSE(t.owns_all(0, cmd(0, 1, {7})));
  EXPECT_EQ(t.unique_owner(cmd(0, 1, {7})), kNoNode);
}

TEST(OwnershipTable, DefaultOwnerAppliesLazily) {
  OwnershipTable t;
  t.set_default_owner(core::OwnerMap::modulo(3));
  EXPECT_TRUE(t.owns_all(1, cmd(1, 1, {1, 4, 7})));
  EXPECT_FALSE(t.owns_all(1, cmd(1, 2, {1, 2})));
  EXPECT_EQ(t.unique_owner(cmd(0, 3, {3, 6})), 0u);
  EXPECT_EQ(t.unique_owner(cmd(0, 4, {3, 4})), kNoNode);  // owners differ
}

TEST(OwnershipTable, OwnershipInvalidWhenPromiseAdvances) {
  OwnershipTable t;
  ObjectState& st = t.obj(5);
  st.owner = 2;
  st.owned_epoch = 3;
  st.promised = 3;
  EXPECT_TRUE(t.owns_all(2, cmd(2, 1, {5})));
  st.promised = 4;  // a thief prepared epoch 4
  EXPECT_FALSE(t.owns_all(2, cmd(2, 2, {5})));
  // unique_owner still reports node 2 until an accept changes it — that is
  // what routes forwarded commands while an acquisition is in flight.
  EXPECT_EQ(t.unique_owner(cmd(0, 1, {5})), 2u);
}

TEST(OwnershipTable, RouteAnswersAllQueriesInOnePass) {
  OwnershipTable t;
  t.set_default_owner(core::OwnerMap::modulo(3));
  const auto c = cmd(1, 1, {1, 4, 6});  // owners 1, 1, 0
  const auto r = t.route(1, c);
  EXPECT_FALSE(r.owns_all);             // object 6 belongs to node 0
  EXPECT_EQ(r.unique_owner, kNoNode);   // owners differ
  EXPECT_EQ(r.plurality_owner, 1u);     // node 1 holds 2 of 3
  ASSERT_EQ(r.undecided.size(), 3u);    // nothing decided yet
}

TEST(OwnershipTable, RouteDoesOneLookupPerObject) {
  // Pins the single-pass property: routing a k-object command costs exactly
  // k table lookups (the old owns_all + unique/plurality + undecided split
  // probed each object three times).
  OwnershipTable t;
  t.set_default_owner(core::OwnerMap::modulo(3));
  const auto c3 = cmd(1, 1, {1, 4, 7});
  const auto before3 = t.lookup_count();
  (void)t.route(1, c3);
  EXPECT_EQ(t.lookup_count() - before3, 3u);

  const auto c1 = cmd(1, 2, {2});
  const auto before1 = t.lookup_count();
  (void)t.route(1, c1);
  EXPECT_EQ(t.lookup_count() - before1, 1u);
}

TEST(OwnershipTable, PluralityTieBreaksToLowestNode) {
  OwnershipTable t;
  t.obj(10).owner = 2;
  t.obj(11).owner = 1;
  // One object each: tie between nodes 1 and 2 goes to node 1.
  EXPECT_EQ(t.plurality_owner(cmd(0, 1, {10, 11})), 1u);
}

TEST(OwnershipTable, FirstUndecidedSkipsDecidedPrefix) {
  OwnershipTable t;
  EXPECT_EQ(t.first_undecided(9), 1u);
  t.set_decided(9, 1, cptr(0, 1, {9}));
  t.set_decided(9, 2, cptr(0, 2, {9}));
  EXPECT_EQ(t.first_undecided(9), 3u);
}

TEST(OwnershipTable, FirstUndecidedFindsGap) {
  OwnershipTable t;
  t.set_decided(9, 1, cptr(0, 1, {9}));
  t.set_decided(9, 3, cptr(0, 3, {9}));  // hole at 2
  EXPECT_EQ(t.first_undecided(9), 2u);
}

TEST(OwnershipTable, FirstUndecidedStartsAtFrontier) {
  OwnershipTable t;
  ObjectState& st = t.obj(9);
  st.last_appended = 10;  // delivered prefix; slots below are pruned
  EXPECT_EQ(t.first_undecided(9), 11u);
}

TEST(OwnershipTable, SetDecidedIsIdempotent) {
  OwnershipTable t;
  EXPECT_TRUE(t.set_decided(1, 1, cptr(0, 1, {1})));
  EXPECT_FALSE(t.set_decided(1, 1, cptr(0, 1, {1})));
  EXPECT_TRUE(t.is_decided_on(cmd(0, 1, {1}), 1));
}

TEST(OwnershipTable, DecidedEverywhereNeedsAllObjects) {
  OwnershipTable t;
  const auto c = cptr(0, 1, {1, 2});
  t.set_decided(1, 1, c);
  EXPECT_TRUE(t.is_decided_on(*c, 1));
  EXPECT_FALSE(t.is_decided_on(*c, 2));
  EXPECT_FALSE(t.is_decided_everywhere(*c));
  t.set_decided(2, 5, c);  // positions may differ per object
  EXPECT_TRUE(t.is_decided_everywhere(*c));
}

TEST(SlotLog, TruncateBelowDropsPrefixAndKeepsDecisions) {
  SlotLog log;
  for (Instance in = 1; in <= 10; ++in)
    log.at_or_create(in).decided =
        std::make_shared<const Command>(cmd(0, in, {1}));
  EXPECT_EQ(log.base(), 1u);
  EXPECT_EQ(log.end(), 11u);

  log.truncate_below(7);
  EXPECT_EQ(log.base(), 7u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.find(6), nullptr);  // truncated
  ASSERT_NE(log.find(7), nullptr);
  // Retained decisions are byte-for-byte stable across the truncation.
  EXPECT_EQ(log.find(7)->decided->id, cmd(0, 7, {1}).id);
  EXPECT_EQ(log.find(10)->decided->id, cmd(0, 10, {1}).id);
}

TEST(SlotLog, TruncateEmptyLogJumpsBase) {
  SlotLog log;
  log.truncate_below(100);
  EXPECT_EQ(log.base(), 100u);
  EXPECT_TRUE(log.empty());
  // New slots materialize above the jumped base; gaps default-construct.
  log.at_or_create(105).accepted_epoch = 3;
  EXPECT_EQ(log.end(), 106u);
  ASSERT_NE(log.find(102), nullptr);
  EXPECT_FALSE(log.find(102)->decided);  // gap slot == map-absent
}

TEST(OwnershipTable, SetDecidedBelowHorizonIsIgnored) {
  OwnershipTable t;
  ObjectState& st = t.obj(1);
  st.log.truncate_below(50);
  st.last_appended = 49;
  EXPECT_FALSE(t.set_decided(1, 10, cptr(0, 1, {1})));  // below base: stale
  EXPECT_TRUE(t.set_decided(1, 50, cptr(0, 2, {1})));
}

}  // namespace
}  // namespace m2::m2p
