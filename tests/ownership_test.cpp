#include <gtest/gtest.h>

#include "m2paxos/ownership.hpp"
#include "test_util.hpp"

namespace m2::m2p {
namespace {

using test::cmd;

TEST(OwnershipTable, UnknownObjectHasNoOwner) {
  OwnershipTable t;
  EXPECT_EQ(t.find(7), nullptr);
  EXPECT_FALSE(t.owns_all(0, cmd(0, 1, {7})));
  EXPECT_EQ(t.unique_owner(cmd(0, 1, {7})), kNoNode);
}

TEST(OwnershipTable, DefaultOwnerAppliesLazily) {
  OwnershipTable t;
  t.set_default_owner([](ObjectId l) { return static_cast<NodeId>(l % 3); });
  EXPECT_TRUE(t.owns_all(1, cmd(1, 1, {1, 4, 7})));
  EXPECT_FALSE(t.owns_all(1, cmd(1, 2, {1, 2})));
  EXPECT_EQ(t.unique_owner(cmd(0, 3, {3, 6})), 0u);
  EXPECT_EQ(t.unique_owner(cmd(0, 4, {3, 4})), kNoNode);  // owners differ
}

TEST(OwnershipTable, OwnershipInvalidWhenPromiseAdvances) {
  OwnershipTable t;
  ObjectState& st = t.obj(5);
  st.owner = 2;
  st.owned_epoch = 3;
  st.promised = 3;
  EXPECT_TRUE(t.owns_all(2, cmd(2, 1, {5})));
  st.promised = 4;  // a thief prepared epoch 4
  EXPECT_FALSE(t.owns_all(2, cmd(2, 2, {5})));
  // unique_owner still reports node 2 until an accept changes it — that is
  // what routes forwarded commands while an acquisition is in flight.
  EXPECT_EQ(t.unique_owner(cmd(0, 1, {5})), 2u);
}

TEST(OwnershipTable, FirstUndecidedSkipsDecidedPrefix) {
  OwnershipTable t;
  EXPECT_EQ(t.first_undecided(9), 1u);
  t.set_decided(9, 1, cmd(0, 1, {9}));
  t.set_decided(9, 2, cmd(0, 2, {9}));
  EXPECT_EQ(t.first_undecided(9), 3u);
}

TEST(OwnershipTable, FirstUndecidedFindsGap) {
  OwnershipTable t;
  t.set_decided(9, 1, cmd(0, 1, {9}));
  t.set_decided(9, 3, cmd(0, 3, {9}));  // hole at 2
  EXPECT_EQ(t.first_undecided(9), 2u);
}

TEST(OwnershipTable, FirstUndecidedStartsAtFrontier) {
  OwnershipTable t;
  ObjectState& st = t.obj(9);
  st.last_appended = 10;  // delivered prefix; slots below are pruned
  EXPECT_EQ(t.first_undecided(9), 11u);
}

TEST(OwnershipTable, SetDecidedIsIdempotent) {
  OwnershipTable t;
  EXPECT_TRUE(t.set_decided(1, 1, cmd(0, 1, {1})));
  EXPECT_FALSE(t.set_decided(1, 1, cmd(0, 1, {1})));
  EXPECT_TRUE(t.is_decided_on(cmd(0, 1, {1}), 1));
}

TEST(OwnershipTable, DecidedEverywhereNeedsAllObjects) {
  OwnershipTable t;
  const auto c = cmd(0, 1, {1, 2});
  t.set_decided(1, 1, c);
  EXPECT_TRUE(t.is_decided_on(c, 1));
  EXPECT_FALSE(t.is_decided_on(c, 2));
  EXPECT_FALSE(t.is_decided_everywhere(c));
  t.set_decided(2, 5, c);  // positions may differ per object
  EXPECT_TRUE(t.is_decided_everywhere(c));
}

}  // namespace
}  // namespace m2::m2p
