// Cross-protocol property tests: for every protocol, random workloads must
// satisfy the Generalized Consensus specification (§III of the paper):
//   Non-triviality — only proposed commands are delivered;
//   Stability      — delivery is append-only (enforced by CStruct);
//   Consistency    — conflicting commands are delivered in one order;
//   Liveness       — every proposed command is eventually delivered
//                    everywhere (crash-free runs).
#include <gtest/gtest.h>

#include <unordered_set>

#include "harness/cluster.hpp"
#include "test_util.hpp"
#include "workload/synthetic.hpp"
#include "workload/tpcc.hpp"

namespace m2 {
namespace {

struct PropertyParam {
  core::Protocol protocol;
  int n_nodes;
  std::uint64_t seed;
  int objects;       // size of the hot object set
  double multi_obj;  // probability of a 2-3 object command
};

std::string param_name(const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto& p = info.param;
  return core::to_string(p.protocol) + "_n" + std::to_string(p.n_nodes) +
         "_s" + std::to_string(p.seed) + "_o" + std::to_string(p.objects);
}

class ConsensusProperties : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(ConsensusProperties, GeneralizedConsensusInvariants) {
  const auto p = GetParam();
  wl::SyntheticWorkload workload(
      {p.n_nodes, 100, 1.0, 0.0, 16, p.seed});  // unused generator shell
  auto cfg = test::test_config(p.protocol, p.n_nodes, p.seed);
  harness::Cluster cluster(cfg, workload);
  cluster.set_measuring(true);

  sim::Rng rng(p.seed * 1000003 + 17);
  std::unordered_set<std::uint64_t> proposed;
  const int per_node = 10;
  for (int i = 1; i <= per_node; ++i) {
    for (NodeId n = 0; n < static_cast<NodeId>(p.n_nodes); ++n) {
      core::ObjectList ls{rng.uniform(p.objects)};
      while (rng.chance(p.multi_obj) && ls.size() < 3)
        ls.push_back(rng.uniform(p.objects));
      core::Command c(core::CommandId::make(n, static_cast<std::uint64_t>(i)),
                      ls);
      proposed.insert(c.id.value);
      cluster.propose(n, c);
      // Random pacing: bursts and gaps.
      if (rng.chance(0.5)) cluster.run_for(rng.uniform(300) * sim::kMicrosecond);
    }
  }
  cluster.run_idle();

  const auto expected =
      static_cast<std::uint64_t>(per_node) * static_cast<std::uint64_t>(p.n_nodes);

  // Liveness: everything delivered everywhere.
  for (int n = 0; n < p.n_nodes; ++n)
    EXPECT_EQ(cluster.delivered_at(static_cast<NodeId>(n)), expected)
        << "node " << n;

  // Consistency.
  const auto consistency = cluster.audit_consistency();
  EXPECT_TRUE(consistency.ok) << consistency.violation;

  // Non-triviality.
  const auto nontrivial =
      core::check_nontriviality(cluster.cstructs(), proposed);
  EXPECT_TRUE(nontrivial.ok) << nontrivial.violation;

  // Every proposal was committed exactly once.
  EXPECT_EQ(cluster.committed_count(), expected);
}

std::vector<PropertyParam> make_params() {
  std::vector<PropertyParam> out;
  const core::Protocol protocols[] = {
      core::Protocol::kMultiPaxos, core::Protocol::kGenPaxos,
      core::Protocol::kEPaxos, core::Protocol::kM2Paxos};
  for (const auto protocol : protocols) {
    for (const int n : {3, 5}) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        // Hot and contended (2 objects) and moderately spread (10 objects).
        out.push_back({protocol, n, seed, 2, 0.3});
        out.push_back({protocol, n, seed, 10, 0.5});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ConsensusProperties,
                         ::testing::ValuesIn(make_params()), param_name);

// TPC-C smoke property: the full TPC-C generator against every protocol.
class TpccProperties
    : public ::testing::TestWithParam<core::Protocol> {};

TEST_P(TpccProperties, TpccWorkloadConvergesConsistently) {
  wl::TpccWorkload workload({3, 2, 0.15, 11});
  auto cfg = test::test_config(GetParam(), 3, 11);
  harness::Cluster cluster(cfg, workload);
  cluster.set_measuring(true);
  for (int i = 0; i < 20; ++i)
    for (NodeId n = 0; n < 3; ++n) cluster.propose(n, workload.next(n));
  cluster.run_idle();
  for (int n = 0; n < 3; ++n)
    EXPECT_EQ(cluster.delivered_at(static_cast<NodeId>(n)), 60u);
  const auto report = cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TpccProperties,
    ::testing::Values(core::Protocol::kMultiPaxos, core::Protocol::kGenPaxos,
                      core::Protocol::kEPaxos, core::Protocol::kM2Paxos),
    [](const ::testing::TestParamInfo<core::Protocol>& info) {
      return core::to_string(info.param);
    });

}  // namespace
}  // namespace m2
