// Chaos-hardened runtime: peer health state machine and backoff bounds
// (driven with a deterministic clock), connect-timeout and reconnect-storm
// behavior over real sockets, the ChaosTransport fault decorator, transport
// option validation, and the chaos soak runner end to end (including the
// --inject-bug detection proof).
//
// Labeled `runtime` like runtime_test.cpp — CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "m2/cluster.hpp"
#include "m2paxos/messages.hpp"
#include "runtime/chaos.hpp"
#include "runtime/chaos_transport.hpp"
#include "runtime/clock.hpp"
#include "runtime/peer_health.hpp"
#include "runtime/runtime.hpp"
#include "runtime/spec.hpp"
#include "runtime/tcp_transport.hpp"

namespace m2::runtime {
namespace {

std::uint16_t chaos_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

net::PayloadPtr make_accept(std::uint64_t req_id) {
  core::Command cmd(core::CommandId::make(0, 1), {7}, 16);
  m2p::SlotList slots;
  slots.push_back(m2p::SlotValue(7, 42, 3, std::move(cmd)));
  return net::make_payload<m2p::Accept>(req_id, std::move(slots));
}

// ----------------------------------------------------------- peer health

TEST(PeerHealth, BackoffStaysWithinJitterBoundsAndNeverExceedsCap) {
  PeerHealth::Options opts;
  opts.backoff_base = 10 * core::kMillisecond;
  opts.backoff_cap = 200 * core::kMillisecond;
  opts.suspect_after = 1;
  opts.down_after = 100;  // stay on the backoff ladder for the whole test
  PeerHealth health(opts, /*rng_seed=*/42);

  // Deterministic clock: failures happen at fixed instants, so every
  // next_attempt() bound is exact. Each decorrelated-jitter step is within
  // [base, min(cap, max(base, 3*prev))] of the failure time.
  core::Time now = 1 * core::kSecond;
  core::Time prev_backoff = 0;
  for (int i = 0; i < 50; ++i) {
    health.on_failure(now);
    const core::Time wait = health.next_attempt() - now;
    EXPECT_GE(wait, opts.backoff_base) << "step " << i;
    EXPECT_LE(wait, opts.backoff_cap) << "step " << i;
    const core::Time hi =
        std::min(opts.backoff_cap, std::max(opts.backoff_base,
                                            prev_backoff * 3));
    EXPECT_LE(wait, std::max(hi, opts.backoff_base)) << "step " << i;
    EXPECT_FALSE(health.attempt_due(now));
    EXPECT_TRUE(health.attempt_due(health.next_attempt()));
    prev_backoff = wait;
    now = health.next_attempt();
  }

  // Success resets the ladder completely: the next failure starts from base
  // again instead of the capped value.
  health.on_connect_success();
  EXPECT_EQ(health.next_attempt(), 0);
  EXPECT_TRUE(health.attempt_due(now));
  health.on_failure(now);
  EXPECT_LE(health.next_attempt() - now, opts.backoff_base);
}

TEST(PeerHealth, TransitionsUpSuspectDownAndBackUp) {
  PeerHealth::Options opts;
  opts.suspect_after = 1;
  opts.down_after = 3;
  opts.probe_interval = 500 * core::kMillisecond;
  PeerHealth health(opts, /*rng_seed=*/7);
  EXPECT_EQ(health.state(), PeerState::kUp);

  core::Time now = 0;
  EXPECT_TRUE(health.on_failure(now));  // 1st failure: up -> suspect
  EXPECT_EQ(health.state(), PeerState::kSuspect);
  EXPECT_FALSE(health.on_failure(now));  // 2nd: still suspect
  EXPECT_EQ(health.state(), PeerState::kSuspect);
  EXPECT_TRUE(health.on_failure(now));  // 3rd: suspect -> down
  EXPECT_EQ(health.state(), PeerState::kDown);
  EXPECT_EQ(health.consecutive_failures(), 3);

  // Down is absorbing under further failures (failures stop growing too,
  // so a long outage cannot overflow the counter).
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(health.on_failure(now));
    EXPECT_EQ(health.state(), PeerState::kDown);
    EXPECT_EQ(health.consecutive_failures(), 3);
    now = health.next_attempt();
  }

  // A successful probe goes straight back to up and resets everything.
  EXPECT_TRUE(health.on_connect_success());
  EXPECT_EQ(health.state(), PeerState::kUp);
  EXPECT_EQ(health.consecutive_failures(), 0);
  EXPECT_FALSE(health.on_connect_success());  // already up: no transition
}

TEST(PeerHealth, DownPeerProbesOnFixedCadenceNotBackoff) {
  PeerHealth::Options opts;
  opts.backoff_base = 1 * core::kMillisecond;
  opts.backoff_cap = 10 * core::kSecond;
  opts.suspect_after = 1;
  opts.down_after = 2;
  opts.probe_interval = 250 * core::kMillisecond;
  PeerHealth health(opts, /*rng_seed=*/3);

  core::Time now = 0;
  health.on_failure(now);
  health.on_failure(now);
  ASSERT_EQ(health.state(), PeerState::kDown);

  // Every failed probe schedules the next exactly probe_interval out —
  // constant cadence, no exponential growth once down.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(health.next_attempt(), now + opts.probe_interval) << i;
    now = health.next_attempt();
    health.on_failure(now);
  }
}

TEST(PeerHealth, StringNamesCoverEveryState) {
  EXPECT_STREQ(to_string(PeerState::kUp), "up");
  EXPECT_STREQ(to_string(PeerState::kSuspect), "suspect");
  EXPECT_STREQ(to_string(PeerState::kDown), "down");
}

// ----------------------------------------------------- option validation

TEST(TransportOptions, ValidRejectsNonPositiveAndMisorderedKnobs) {
  TransportOptions good;
  EXPECT_TRUE(good.valid());

  auto mutated = [&](auto&& set) {
    TransportOptions o;
    set(o);
    return o.valid();
  };
  EXPECT_FALSE(mutated([](TransportOptions& o) { o.max_coalesce_bytes = 0; }));
  EXPECT_FALSE(mutated([](TransportOptions& o) { o.max_queue_bytes = 0; }));
  EXPECT_FALSE(mutated([](TransportOptions& o) { o.connect_timeout = 0; }));
  EXPECT_FALSE(mutated([](TransportOptions& o) { o.connect_timeout = -1; }));
  EXPECT_FALSE(mutated([](TransportOptions& o) { o.backoff_base = 0; }));
  EXPECT_FALSE(mutated([](TransportOptions& o) {
    o.backoff_cap = o.backoff_base - 1;  // cap below base
  }));
  EXPECT_FALSE(mutated([](TransportOptions& o) { o.suspect_after = 0; }));
  EXPECT_FALSE(mutated([](TransportOptions& o) {
    o.suspect_after = 5;
    o.down_after = 4;  // down threshold below suspect threshold
  }));
  EXPECT_FALSE(mutated([](TransportOptions& o) { o.probe_interval = 0; }));
}

TEST(ClusterSpecTransport, ParsesLifecycleKnobsAndRejectsInvalid) {
  const char* text = R"({
    "nodes": [{"host": "a", "port": 1}, {"host": "b", "port": 2}],
    "transport": {
      "connect_timeout_ms": 250, "backoff_base_ms": 5,
      "backoff_cap_ms": 1000, "suspect_after": 2, "down_after": 5,
      "probe_interval_ms": 100
    }
  })";
  ClusterSpec spec;
  std::string error;
  ASSERT_TRUE(ClusterSpec::parse(text, &spec, &error)) << error;
  EXPECT_EQ(spec.transport.connect_timeout, 250 * core::kMillisecond);
  EXPECT_EQ(spec.transport.backoff_base, 5 * core::kMillisecond);
  EXPECT_EQ(spec.transport.backoff_cap, 1000 * core::kMillisecond);
  EXPECT_EQ(spec.transport.suspect_after, 2);
  EXPECT_EQ(spec.transport.down_after, 5);
  EXPECT_EQ(spec.transport.probe_interval, 100 * core::kMillisecond);

  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}],
          "transport": {"backoff_base_ms": 0}})",
      &spec, &error));
  EXPECT_NE(error.find("invalid transport"), std::string::npos);
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}],
          "transport": {"backoff_base_ms": 100, "backoff_cap_ms": 50}})",
      &spec, &error));
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}],
          "transport": {"suspect_after": 3, "down_after": 2}})",
      &spec, &error));
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}],
          "transport": {"probe_ms": 1}})",  // unknown key
      &spec, &error));
}

TEST(ClusterBuilderTransport, ConfigValidateCoversLifecycleKnobs) {
  m2::Config cfg;
  EXPECT_TRUE(cfg.validate().empty());
  cfg.transport.backoff_base_ms = 0;
  EXPECT_NE(cfg.validate().find("transport"), std::string::npos);
  cfg.transport.backoff_base_ms = 10;
  cfg.transport.backoff_cap_ms = 5;
  EXPECT_FALSE(cfg.validate().empty());
  cfg.transport.backoff_cap_ms = 2000;
  cfg.transport.down_after = 0;
  EXPECT_FALSE(cfg.validate().empty());
}

// -------------------------------------------------- tcp connect lifecycle

TEST(TcpLifecycle, ConnectTimeoutBoundsDialToUnresponsivePeer) {
  // A listener that never accepts and has a zero backlog: once the backlog
  // token is consumed, further SYNs are ignored and a connect() hangs until
  // its timeout — the exact black-hole case connect_timeout bounds.
  const int sink = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(sink, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(sink, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(sink, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(sink, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  // Consume the backlog so the transport's dial gets black-holed. The
  // fillers dial non-blocking: the ones past the backlog would otherwise
  // hang here for the kernel's SYN-retry timeout themselves.
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int f = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(f, 0);
    ::connect(f, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(f);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<Endpoint> endpoints = {{"127.0.0.1", chaos_free_port()},
                                     {"127.0.0.1", port}};
  TransportOptions options;
  options.connect_timeout = 100 * core::kMillisecond;
  options.backoff_base = 5 * core::kMillisecond;
  options.backoff_cap = 50 * core::kMillisecond;
  TcpTransport sender(endpoints, options);
  Inbox rx0;
  sender.attach(0, &rx0);
  sender.start();
  ASSERT_TRUE(sender.error().empty()) << sender.error();

  // Without the timeout, the writer would sit in connect() for the kernel
  // default (minutes) and never record an attempt. With it, failed attempts
  // accumulate quickly.
  MonotonicClock clock;
  sender.send(0, 1, *make_accept(1));
  const core::Time deadline = clock.now() + 20 * core::kSecond;
  while (sender.counters().connect_failures.load() < 2 &&
         clock.now() < deadline) {
    sender.send(0, 1, *make_accept(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sender.counters().connect_failures.load(), 2u);
  sender.stop();
  for (const int f : fillers) ::close(f);
  ::close(sink);
}

TEST(TcpLifecycle, DeadPeerGoesDownWithoutConnectStormThenRecovers) {
  // Nothing listens on the peer port: every dial fails fast (ECONNREFUSED).
  std::vector<Endpoint> endpoints = {{"127.0.0.1", chaos_free_port()},
                                     {"127.0.0.1", chaos_free_port()}};
  TransportOptions options;
  options.connect_timeout = 200 * core::kMillisecond;
  options.backoff_base = 5 * core::kMillisecond;
  options.backoff_cap = 40 * core::kMillisecond;
  options.suspect_after = 1;
  options.down_after = 3;
  options.probe_interval = 50 * core::kMillisecond;
  TcpTransport sender(endpoints, options);
  Inbox rx0;
  sender.attach(0, &rx0);
  sender.start();
  ASSERT_TRUE(sender.error().empty()) << sender.error();

  // Blast sends while the peer is dead. The health machine must take the
  // peer down (state changes counted), and the dial count must be bounded
  // by backoff/probe cadence — not by the send rate.
  MonotonicClock clock;
  constexpr std::uint64_t kSends = 20000;
  const core::Time t0 = clock.now();
  for (std::uint64_t i = 0; i < kSends; ++i)
    sender.send(0, 1, *make_accept(i));
  while (sender.peer_state(1) != PeerState::kDown &&
         clock.now() < t0 + 20 * core::kSecond)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(sender.peer_state(1), PeerState::kDown);
  EXPECT_GE(sender.counters().peer_state_changes.load(), 2u);  // up->suspect->down
  EXPECT_GT(sender.counters().messages_dropped.load(), 0u);

  // Let the prober run a while: attempts accrue per probe interval.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::uint64_t dials = sender.counters().connect_failures.load();
  EXPECT_GT(dials, 0u);
  // 20k sends + ~0.5s of wall time at 50ms probes / >=5ms backoff: if every
  // send (or even 1% of them) dialed, this would be in the hundreds+.
  EXPECT_LT(dials, 100u);

  // Once down, fresh sends are dropped at enqueue without dialing.
  const std::uint64_t dials_before = sender.counters().connect_failures.load();
  const std::uint64_t dropped_before =
      sender.counters().messages_dropped.load();
  for (std::uint64_t i = 0; i < 1000; ++i)
    sender.send(0, 1, *make_accept(i));
  EXPECT_GE(sender.counters().messages_dropped.load(),
            dropped_before + 1000u);
  EXPECT_LE(sender.counters().connect_failures.load() - dials_before, 20u);

  // Bring the peer up: the next probe reconnects, the state returns to up,
  // and traffic flows again.
  TcpTransport receiver(endpoints);
  Inbox rx1;
  receiver.attach(1, &rx1);
  receiver.start();
  ASSERT_TRUE(receiver.error().empty()) << receiver.error();
  std::vector<Event> events;
  std::size_t got = 0;
  const core::Time deadline = clock.now() + 30 * core::kSecond;
  while (got == 0 && clock.now() < deadline) {
    sender.send(0, 1, *make_accept(1));
    got = rx1.drain_until(clock.now() + 50 * core::kMillisecond, clock,
                          events);
  }
  EXPECT_GT(got, 0u);
  EXPECT_EQ(sender.peer_state(1), PeerState::kUp);
  EXPECT_GE(sender.counters().peer_state_changes.load(), 3u);  // ... down->up
  receiver.stop();
  sender.stop();
}

TEST(TcpLifecycle, LifecycleCountersFoldIntoMergedMetrics) {
  std::vector<Endpoint> endpoints = {{"127.0.0.1", chaos_free_port()},
                                     {"127.0.0.1", chaos_free_port()}};
  TransportOptions options;
  options.backoff_base = 1 * core::kMillisecond;
  options.backoff_cap = 10 * core::kMillisecond;
  options.probe_interval = 10 * core::kMillisecond;
  TcpTransport sender(endpoints, options);
  Inbox rx0;
  sender.attach(0, &rx0);
  sender.start();
  MonotonicClock clock;
  const core::Time deadline = clock.now() + 20 * core::kSecond;
  while (sender.counters().connect_failures.load() == 0 &&
         clock.now() < deadline) {
    sender.send(0, 1, *make_accept(9));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sender.stop();

  stats::MetricsRegistry reg;
  sender.fold_metrics(reg);
  EXPECT_EQ(reg.counter(stats::Counter::kRuntimeConnectFailures),
            sender.counters().connect_failures.load());
  EXPECT_EQ(reg.counter(stats::Counter::kRuntimePeerStateChanges),
            sender.counters().peer_state_changes.load());
  EXPECT_EQ(reg.counter(stats::Counter::kRuntimeReconnects),
            sender.counters().reconnects.load());
}

// -------------------------------------------------------- chaos decorator

/// Two-node loopback cluster under a ChaosTransport, with both inboxes in
/// hand: send through the chaos layer, observe what survives.
struct ChaosPair {
  ChaosPair() : chaos(std::make_unique<LoopbackTransport>(2), 2, 99) {
    chaos.attach(0, &rx0);
    chaos.attach(1, &rx1);
    chaos.start();
  }
  ~ChaosPair() { chaos.stop(); }

  std::size_t drain(Inbox& rx, std::size_t want, std::vector<Event>& out,
                    core::Time wait = 5 * core::kSecond) {
    std::size_t got = 0;
    const core::Time deadline = clock.now() + wait;
    while (got < want && clock.now() < deadline)
      got += rx.drain_until(deadline, clock, out);
    return got;
  }

  MonotonicClock clock;
  ChaosTransport chaos;
  Inbox rx0;
  Inbox rx1;
};

TEST(ChaosTransportUnit, LinkDownLossAndPartitionDropAndCount) {
  ChaosPair pair;
  pair.chaos.set_link(0, 1, true);
  pair.chaos.send(0, 1, *make_accept(1));
  EXPECT_EQ(pair.chaos.chaos_dropped(), 1u);

  pair.chaos.heal();
  pair.chaos.set_loss(1.0);
  pair.chaos.send(0, 1, *make_accept(2));
  EXPECT_EQ(pair.chaos.chaos_dropped(), 2u);
  pair.chaos.set_loss(0.0);

  pair.chaos.set_partition({0});
  pair.chaos.send(0, 1, *make_accept(3));
  pair.chaos.send(1, 0, *make_accept(4));
  EXPECT_EQ(pair.chaos.chaos_dropped(), 4u);
  // Self-delivery is immune even inside a partition.
  pair.chaos.broadcast(0, *make_accept(5), /*include_self=*/true);
  std::vector<Event> events;
  EXPECT_EQ(pair.drain(pair.rx0, 1, events), 1u);
  pair.chaos.heal();

  // Healed: traffic flows and nothing new is counted.
  pair.chaos.send(0, 1, *make_accept(6));
  events.clear();
  EXPECT_EQ(pair.drain(pair.rx1, 1, events), 1u);
  EXPECT_TRUE(pair.chaos.saw_loss());
}

TEST(ChaosTransportUnit, DuplicatesDeliverTwiceAndDelaysReorder) {
  ChaosPair pair;
  pair.chaos.set_duplication(1.0);
  pair.chaos.send(0, 1, *make_accept(1));
  std::vector<Event> events;
  EXPECT_EQ(pair.drain(pair.rx1, 2, events), 2u);  // original + duplicate
  EXPECT_EQ(pair.chaos.chaos_duplicated(), 1u);
  pair.chaos.set_duplication(0.0);

  // Jittered delay: a burst goes through the hold-back queue and arrives
  // complete (reordering is allowed, loss is not).
  pair.chaos.set_delay(2 * core::kMillisecond);
  constexpr std::uint64_t kBurst = 64;
  for (std::uint64_t i = 0; i < kBurst; ++i)
    pair.chaos.send(0, 1, *make_accept(100 + i));
  events.clear();
  EXPECT_EQ(pair.drain(pair.rx1, kBurst, events), kBurst);
  EXPECT_EQ(pair.chaos.chaos_delayed(), kBurst);
  pair.chaos.calm();
}

TEST(ChaosTransportUnit, CorruptFallsBackToOneShotDropOnLoopback) {
  ChaosPair pair;
  // Loopback has no wire: chaos_corrupt_next is unsupported, so the
  // decorator arms a one-shot drop on the link instead.
  pair.chaos.inject_corrupt(0, 1);
  pair.chaos.send(0, 1, *make_accept(1));  // eaten by the corruption
  EXPECT_EQ(pair.chaos.chaos_corrupted(), 1u);
  pair.chaos.send(0, 1, *make_accept(2));  // one-shot: this one delivers
  std::vector<Event> events;
  ASSERT_EQ(pair.drain(pair.rx1, 1, events), 1u);
  EXPECT_EQ(static_cast<const m2p::Accept&>(*events.front().payload).req_id,
            2u);
  // Resets are meaningless without connections: not supported, not counted.
  pair.chaos.inject_reset(1);
  EXPECT_EQ(pair.chaos.chaos_resets(), 0u);
}

TEST(ChaosTransportUnit, CorruptOverTcpTearsDownViaCrcCheck) {
  // ChaosTransport over two real TcpTransports: inject_corrupt flips a
  // body byte after the CRC is computed, so the receiver counts a decode
  // failure and kills the connection — the full wire teardown path.
  std::vector<Endpoint> endpoints = {{"127.0.0.1", chaos_free_port()},
                                     {"127.0.0.1", chaos_free_port()}};
  ChaosTransport sender(std::make_unique<TcpTransport>(endpoints), 2, 5);
  TcpTransport receiver(endpoints);
  Inbox rx0;
  Inbox rx1;
  sender.attach(0, &rx0);
  receiver.attach(1, &rx1);
  sender.start();
  receiver.start();
  ASSERT_TRUE(sender.start_error().empty()) << sender.start_error();
  ASSERT_TRUE(receiver.error().empty()) << receiver.error();

  // Establish the connection with a clean message first.
  MonotonicClock clock;
  std::vector<Event> events;
  std::size_t got = 0;
  core::Time deadline = clock.now() + 30 * core::kSecond;
  while (got == 0 && clock.now() < deadline) {
    sender.send(0, 1, *make_accept(1));
    got = rx1.drain_until(clock.now() + 50 * core::kMillisecond, clock,
                          events);
  }
  ASSERT_GT(got, 0u);

  sender.inject_corrupt(0, 1);
  sender.send(0, 1, *make_accept(2));
  EXPECT_EQ(sender.chaos_corrupted(), 1u);
  deadline = clock.now() + 30 * core::kSecond;
  while (receiver.counters().decode_failures.load() == 0 &&
         clock.now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(receiver.counters().decode_failures.load(), 1u);

  // And a reset against the (reconnected or old) live connection counts
  // once it actually severs something.
  deadline = clock.now() + 30 * core::kSecond;
  while (clock.now() < deadline) {
    sender.send(0, 1, *make_accept(3));
    sender.inject_reset(1);
    if (sender.chaos_resets() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(sender.chaos_resets(), 1u);
  receiver.stop();
  sender.stop();
}

TEST(ChaosTransportUnit, InboxToleratesDuplicatedAndReorderedTraffic) {
  // A real 3-node M²Paxos cluster where EVERY cross-node message is
  // duplicated and jitter-delayed (so copies overtake each other). The
  // protocol must still commit the full workload: duplicate and reordered
  // frames at the inboxes are tolerated end to end.
  const int n = 3;
  auto chaos_owned = std::make_unique<ChaosTransport>(
      std::make_unique<LoopbackTransport>(n), n, 77);
  ChaosTransport* chaos = chaos_owned.get();
  chaos->set_duplication(1.0);
  chaos->set_delay(1 * core::kMillisecond);

  RuntimeConfig cfg;
  cfg.protocol = core::Protocol::kM2Paxos;
  cfg.cluster.n_nodes = n;
  cfg.seed = 11;
  cfg.preassign_ownership = true;
  cfg.owner_map = core::OwnerMap::modulo(static_cast<std::uint64_t>(n));
  std::vector<NodeId> all(n);
  for (int i = 0; i < n; ++i) all[i] = static_cast<NodeId>(i);
  Runtime rt(cfg, std::move(chaos_owned), all);
  std::string error;
  ASSERT_TRUE(rt.start(&error)) << error;

  constexpr std::uint64_t kPerNode = 100;
  for (std::uint64_t seq = 1; seq <= kPerNode; ++seq) {
    for (NodeId node = 0; node < n; ++node) {
      rt.propose(node, core::Command(core::CommandId::make(node, seq),
                                     {node}, 16));
    }
  }
  EXPECT_TRUE(rt.await_committed(kPerNode * n, 60 * core::kSecond));
  EXPECT_GT(chaos->chaos_duplicated(), 0u);
  EXPECT_GT(chaos->chaos_delayed(), 0u);
  EXPECT_FALSE(chaos->saw_loss());
  rt.stop();
}

// ------------------------------------------------------------ soak runner

TEST(ChaosRunner, CleanSeedCommitsAndPassesAuditor) {
  ChaosCase cc;
  cc.protocol = core::Protocol::kM2Paxos;
  cc.n_nodes = 4;
  cc.seed = 1;
  cc.horizon = 250 * core::kMillisecond;
  cc.drain = 1500 * core::kMillisecond;
  cc.commands_per_node = 60;
  const ChaosResult result = run_chaos_case(cc);
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? "no violations"
                                 : result.violations.front());
  EXPECT_GT(result.proposals, 0u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_FALSE(result.schedule.empty());
}

TEST(ChaosRunner, DetectsInjectedEpochSafetyBug) {
  // The deliberate epoch bug (ClusterConfig::test_unsafe_epochs) must be
  // caught by the auditor through the chaos pipeline — the end-to-end proof
  // that a real safety break cannot hide behind fault noise. Any one seed
  // may get lucky, so scan a few; the sweep in CI uses the same mechanism.
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 5 && !caught; ++seed) {
    ChaosCase cc;
    cc.protocol = core::Protocol::kM2Paxos;
    cc.n_nodes = 5;
    cc.seed = seed;
    cc.horizon = 300 * core::kMillisecond;
    cc.drain = 1500 * core::kMillisecond;
    cc.commands_per_node = 100;
    cc.inject_bug = true;
    const ChaosResult result = run_chaos_case(cc);
    caught = !result.ok;
  }
  EXPECT_TRUE(caught) << "injected epoch bug evaded the auditor on 5 seeds";
}

TEST(ChaosRunner, KeepEpisodesRestrictsTheSchedule) {
  ChaosCase cc;
  cc.protocol = core::Protocol::kM2Paxos;
  cc.n_nodes = 4;
  cc.seed = 2;
  cc.horizon = 200 * core::kMillisecond;
  cc.drain = 1200 * core::kMillisecond;
  cc.commands_per_node = 40;
  const ChaosResult full = run_chaos_case(cc);
  cc.keep_episodes = {-2};  // sentinel: keep nothing — a calm run
  const ChaosResult calm = run_chaos_case(cc);
  EXPECT_TRUE(calm.ok);
  EXPECT_TRUE(calm.schedule.empty());
  EXPECT_LT(calm.schedule.size(), full.schedule.size());
}

}  // namespace
}  // namespace m2::runtime
