// Threaded real-transport runtime: timer wheel and inbox units, 5-node
// loopback clusters (M²Paxos and Multi-Paxos) deciding 10k commands
// through a node kill-and-restart with auditor-checked ordering safety,
// a real-socket TCP smoke test, and the public m2::ClusterBuilder facade.
//
// Labeled `runtime` — CI runs this binary under TSan (the loopback
// clusters exercise every cross-thread edge: inbox handoff, timer wheel,
// transport counters, commit accounting).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "m2/cluster.hpp"
#include "m2paxos/messages.hpp"
#include "net/codec.hpp"
#include "net/serde.hpp"
#include "runtime/clock.hpp"
#include "runtime/inbox.hpp"
#include "runtime/runtime.hpp"
#include "runtime/spec.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/timer_wheel.hpp"

namespace m2::runtime {
namespace {

// ---------------------------------------------------------------- timers

TEST(TimerWheel, FiresInDeadlineThenInsertionOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.set(0, 3 * core::kMillisecond, core::TimerFn([&] { fired.push_back(3); }));
  wheel.set(0, 1 * core::kMillisecond, core::TimerFn([&] { fired.push_back(1); }));
  wheel.set(0, 2 * core::kMillisecond, core::TimerFn([&] { fired.push_back(2); }));
  wheel.set(0, 1 * core::kMillisecond, core::TimerFn([&] { fired.push_back(11); }));

  wheel.expire(500 * core::kMicrosecond);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.size(), 4u);

  wheel.expire(10 * core::kMillisecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2, 3}));
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.next_deadline(), core::kTimeNever);
}

TEST(TimerWheel, CancelPreventsFiringAndStaleHandlesAreHarmless) {
  TimerWheel wheel;
  int fired = 0;
  const auto h1 = wheel.set(0, core::kMillisecond,
                            core::TimerFn([&] { ++fired; }));
  const auto h2 = wheel.set(0, core::kMillisecond,
                            core::TimerFn([&] { ++fired; }));
  EXPECT_NE(h1, core::kInvalidTimer);
  wheel.cancel(h1);
  wheel.cancel(h1);                  // double-cancel: no-op
  wheel.cancel(core::kInvalidTimer); // invalid: no-op
  wheel.expire(2 * core::kMillisecond);
  EXPECT_EQ(fired, 1);
  wheel.cancel(h2);  // already fired: no-op

  // The freed slot is recycled with a bumped generation: cancelling the
  // old handle must not kill the new timer.
  const auto h3 = wheel.set(2 * core::kMillisecond, core::kMillisecond,
                            core::TimerFn([&] { ++fired; }));
  EXPECT_NE(h3, h1);
  wheel.cancel(h1);
  wheel.cancel(h2);
  wheel.expire(4 * core::kMillisecond);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheel, NextDeadlineTracksSoonestTimer) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(), core::kTimeNever);
  wheel.set(0, 5 * core::kMillisecond, core::TimerFn([] {}));
  const auto h = wheel.set(0, core::kMillisecond, core::TimerFn([] {}));
  EXPECT_EQ(wheel.next_deadline(), core::kMillisecond);
  wheel.cancel(h);
  // Cancelled entries are dropped as they surface at the heap top, so the
  // reported deadline is exact even right after a cancel.
  EXPECT_EQ(wheel.next_deadline(), 5 * core::kMillisecond);
  wheel.expire(core::kMillisecond);  // nothing due anymore at 1ms
  EXPECT_EQ(wheel.next_deadline(), 5 * core::kMillisecond);
}

TEST(TimerWheel, CallbacksMayRearmReentrantly) {
  TimerWheel wheel;
  int fired = 0;
  // Each firing arms the next: a protocol retry-backoff chain.
  std::function<void(core::Time)> arm = [&](core::Time now) {
    wheel.set(now, core::kMillisecond, core::TimerFn([&, now] {
                ++fired;
                if (fired < 5) arm(now + core::kMillisecond);
              }));
  };
  arm(0);
  for (core::Time t = core::kMillisecond; fired < 5;
       t += core::kMillisecond) {
    wheel.expire(t);
    ASSERT_LT(t, core::kSecond);  // diverged
  }
  EXPECT_EQ(fired, 5);
}

// ----------------------------------------------------------------- inbox

TEST(Inbox, DrainsInFifoOrderAcrossThreads) {
  MonotonicClock clock;
  Inbox inbox;
  constexpr int kPerProducer = 500;
  auto produce = [&](NodeId from) {
    for (int i = 0; i < kPerProducer; ++i)
      inbox.push(Event::message(from, nullptr));
  };
  std::thread a([&] { produce(1); });
  std::thread b([&] { produce(2); });

  int got = 0;
  int last_from_1 = -1, last_from_2 = -1;
  std::vector<Event> batch;
  while (got < 2 * kPerProducer) {
    batch.clear();
    inbox.drain_until(clock.now() + 100 * core::kMillisecond, clock, batch);
    for (const Event& e : batch) {
      ++got;
      // Per-producer FIFO: each producer's events arrive in push order.
      (void)last_from_1;
      (void)last_from_2;
      ASSERT_EQ(e.kind, Event::Kind::kMessage);
    }
  }
  a.join();
  b.join();
  EXPECT_EQ(got, 2 * kPerProducer);
}

TEST(Inbox, DrainHonorsDeadlineWhenEmpty) {
  MonotonicClock clock;
  Inbox inbox;
  std::vector<Event> batch;
  const core::Time t0 = clock.now();
  const std::size_t n =
      inbox.drain_until(t0 + 5 * core::kMillisecond, clock, batch);
  EXPECT_EQ(n, 0u);
  EXPECT_GE(clock.now() - t0, 4 * core::kMillisecond);  // actually waited
}

TEST(Inbox, PopAllSwapsIntoEmptyScratchAndAppendsOtherwise) {
  Inbox inbox;
  for (int i = 0; i < 3; ++i) inbox.push(Event::of(Event::Kind::kStop));

  std::vector<Event> batch;
  EXPECT_EQ(inbox.pop_all(batch), 3u);  // whole backlog in one call
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(inbox.pop_all(batch), 0u);  // empty inbox: non-blocking no-op
  EXPECT_EQ(batch.size(), 3u);

  // A non-empty scratch keeps its contents; new events append after them.
  inbox.push(Event::of(Event::Kind::kCrash));
  EXPECT_EQ(inbox.pop_all(batch), 1u);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.back().kind, Event::Kind::kCrash);
}

TEST(Inbox, CloseDropsSubsequentPushes) {
  MonotonicClock clock;
  Inbox inbox;
  inbox.push(Event::of(Event::Kind::kStop));
  inbox.close();
  inbox.push(Event::of(Event::Kind::kCrash));  // dropped
  std::vector<Event> batch;
  inbox.drain_until(0, clock, batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().kind, Event::Kind::kStop);
}

// ----------------------------------------------- loopback cluster safety

/// Proposes `count` single-object fast-path commands at `node` (objects it
/// owns under OwnerMap::divide(kObjectsPerNode)).
constexpr std::uint64_t kObjectsPerNode = 16;

std::uint64_t propose_homed(Runtime& rt, NodeId node, std::uint64_t& seq,
                            std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const core::ObjectId object =
        node * kObjectsPerNode + (seq % kObjectsPerNode);
    rt.propose(node, core::Command(core::CommandId::make(node, ++seq),
                                   {object}));
  }
  return count;
}

RuntimeConfig cluster_config(core::Protocol protocol, int nodes) {
  RuntimeConfig cfg;
  cfg.protocol = protocol;
  cfg.cluster.n_nodes = nodes;
  cfg.cluster.batching.enabled = true;  // the paper's throughput setup
  cfg.audit = true;
  cfg.owner_map = core::OwnerMap::divide(kObjectsPerNode);
  cfg.seed = 7;
  return cfg;
}

TEST(RuntimeLoopback, M2PaxosDecides10kThroughKillAndRestart) {
  constexpr int kNodes = 5;
  constexpr std::uint64_t kPerNodePhase = 500;  // 4 phases => 10k total
  Runtime rt(cluster_config(core::Protocol::kM2Paxos, kNodes));
  ASSERT_TRUE(rt.start());

  std::vector<std::uint64_t> seq(kNodes, 0);
  std::uint64_t proposed = 0;

  // Phase 1: all nodes propose on their own objects (fast path).
  for (NodeId n = 0; n < kNodes; ++n)
    proposed += propose_homed(rt, n, seq[n], kPerNodePhase);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  // Phase 2: kill node 4; the surviving majority keeps deciding.
  rt.crash(4);
  for (NodeId n = 0; n < 4; ++n)
    proposed += propose_homed(rt, n, seq[n], kPerNodePhase);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  // Phase 3: restart node 4 (volatile state kept — the paper's CP model);
  // everyone proposes again, including the restarted node.
  rt.recover(4);
  for (NodeId n = 0; n < kNodes; ++n)
    proposed += propose_homed(rt, n, seq[n], 1100);
  ASSERT_TRUE(rt.await_committed(proposed, 120 * core::kSecond));
  EXPECT_EQ(proposed, 10'000u);  // 5*500 + 4*500 + 5*1100

  rt.stop();

  // Safety: every pair of conflicting commands delivered in the same
  // relative order on every node that delivered both.
  const auto report = rt.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
  for (NodeId n = 0; n < 4; ++n) EXPECT_GT(rt.delivered(n), 0u);
}

TEST(RuntimeLoopback, MultiPaxosTotalOrderThroughFollowerRestart) {
  constexpr int kNodes = 5;
  Runtime rt(cluster_config(core::Protocol::kMultiPaxos, kNodes));
  ASSERT_TRUE(rt.start());

  std::vector<std::uint64_t> seq(kNodes, 0);
  std::uint64_t proposed = 0;

  for (NodeId n = 0; n < kNodes; ++n)
    proposed += propose_homed(rt, n, seq[n], 400);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  rt.crash(4);  // follower: the leader (node 0) keeps ordering
  for (NodeId n = 0; n < 4; ++n)
    proposed += propose_homed(rt, n, seq[n], 400);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  rt.recover(4);
  for (NodeId n = 0; n < 4; ++n)
    proposed += propose_homed(rt, n, seq[n], 400);
  ASSERT_TRUE(rt.await_committed(proposed, 120 * core::kSecond));

  rt.stop();

  // Slot-ordered delivery makes every node's sequence a prefix of the
  // longest, restarted follower included.
  const auto report = rt.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(rt.delivered(0), 0u);
}

// --------------------------------------------------------------- tcp

/// Reserves a free TCP port: bind :0, read it back, close. The tiny race
/// between close and the listener's re-bind is acceptable for tests.
std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(RuntimeTcp, ThreeProcessesWorthOfNodesOverRealSockets) {
  // Three Runtime instances, each serving one node with its own
  // TcpTransport — every protocol message crosses a real socket, exactly
  // as three m2node processes would (minus fork/exec).
  constexpr int kNodes = 3;
  std::vector<Endpoint> endpoints;
  for (int i = 0; i < kNodes; ++i)
    endpoints.push_back({"127.0.0.1", free_port()});

  RuntimeConfig cfg = cluster_config(core::Protocol::kM2Paxos, kNodes);
  cfg.audit = false;
  std::vector<std::unique_ptr<Runtime>> procs;
  for (NodeId n = 0; n < kNodes; ++n) {
    procs.push_back(std::make_unique<Runtime>(
        cfg, std::make_unique<TcpTransport>(endpoints),
        std::vector<NodeId>{n}));
    std::string error;
    ASSERT_TRUE(procs.back()->start(&error)) << error;
  }

  // Node 0 proposes on its own objects; commit requires a quorum of the
  // three "processes" to converse over TCP.
  constexpr std::uint64_t kCommands = 200;
  std::uint64_t seq = 0;
  propose_homed(*procs[0], 0, seq, kCommands);
  EXPECT_TRUE(procs[0]->await_committed(kCommands, 60 * core::kSecond));

  // Deliveries propagate to every node (Decide broadcasts).
  for (NodeId n = 0; n < kNodes; ++n) {
    const core::Time deadline = procs[n]->clock().now() + 30 * core::kSecond;
    while (procs[n]->delivered(n) < kCommands &&
           procs[n]->clock().now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(procs[n]->delivered(n), kCommands) << "node " << n;
  }
  const auto& counters = procs[0]->transport_counters();
  EXPECT_GT(counters.bytes_sent.load(), 0u);
  EXPECT_EQ(counters.decode_failures.load(), 0u);
  for (auto& p : procs) p->stop();
}

// ------------------------------------------------------------- crc32c

TEST(Crc32c, Rfc3720KnownAnswers) {
  // RFC 3720 §B.4 test vectors, checked against both the dispatched
  // implementation and the software path it must agree with.
  const char digits[] = "123456789";
  EXPECT_EQ(net::crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(net::crc32c_sw(digits, 9), 0xE3069283u);

  std::uint8_t block[32];
  std::memset(block, 0x00, sizeof(block));
  EXPECT_EQ(net::crc32c(block, sizeof(block)), 0x8A9136AAu);
  EXPECT_EQ(net::crc32c_sw(block, sizeof(block)), 0x8A9136AAu);

  std::memset(block, 0xFF, sizeof(block));
  EXPECT_EQ(net::crc32c(block, sizeof(block)), 0x62A8AB43u);
  EXPECT_EQ(net::crc32c_sw(block, sizeof(block)), 0x62A8AB43u);

  for (int i = 0; i < 32; ++i) block[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(net::crc32c(block, sizeof(block)), 0x46DD794Eu);
  EXPECT_EQ(net::crc32c_sw(block, sizeof(block)), 0x46DD794Eu);

  for (int i = 0; i < 32; ++i) block[i] = static_cast<std::uint8_t>(31 - i);
  EXPECT_EQ(net::crc32c(block, sizeof(block)), 0x113FDB5Cu);
  EXPECT_EQ(net::crc32c_sw(block, sizeof(block)), 0x113FDB5Cu);
}

TEST(Crc32c, HardwareAgreesWithSoftwareOnEveryShape) {
  if (!net::crc32c_hw_available())
    GTEST_SKIP() << "crc32c() already dispatches to the software path";
  std::vector<std::uint8_t> data(4096);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;  // deterministic xorshift64
  for (auto& b : data) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    b = static_cast<std::uint8_t>(state);
  }
  // All alignments × lengths around the hardware path's 8-byte stride, so
  // the unaligned head, 64-bit body, and byte tail splits are each hit.
  constexpr std::size_t kLens[] = {0, 1, 3, 7, 8, 9, 15, 16, 17,
                                   63, 64, 65, 255, 1024, 4000};
  for (std::size_t offset = 0; offset < 8; ++offset) {
    for (const std::size_t len : kLens) {
      ASSERT_LE(offset + len, data.size());
      EXPECT_EQ(net::crc32c(data.data() + offset, len),
                net::crc32c_sw(data.data() + offset, len))
          << "offset " << offset << " len " << len;
    }
  }
}

// -------------------------------------------------------- tcp wire path

/// One-slot M²Paxos Accept with a one-object command — the representative
/// fast-path message (same shape bench/micro_runtime.cpp pumps). `req_id`
/// tags the message so receivers can check ordering.
net::PayloadPtr make_accept(std::uint64_t req_id) {
  core::Command cmd(core::CommandId::make(0, 1), {7}, 16);
  m2p::SlotList slots;
  slots.push_back(m2p::SlotValue(7, 42, 3, std::move(cmd)));
  return net::make_payload<m2p::Accept>(req_id, std::move(slots));
}

/// Two TcpTransport instances over real localhost sockets: node 0 lives in
/// `sender`, node 1 in `receiver` — the minimal cross-process shape.
struct WirePair {
  explicit WirePair(TransportOptions sender_options = {})
      : endpoints{{"127.0.0.1", free_port()}, {"127.0.0.1", free_port()}},
        sender(endpoints, sender_options),
        receiver(endpoints) {
    sender.attach(0, &rx0);
    receiver.attach(1, &rx1);
    sender.start();
    receiver.start();
    EXPECT_TRUE(sender.error().empty()) << sender.error();
    EXPECT_TRUE(receiver.error().empty()) << receiver.error();
  }
  ~WirePair() {
    sender.stop();
    receiver.stop();
  }

  /// Appends events from `rx` into `out` until `want` arrived or 30 s.
  std::size_t drain(Inbox& rx, std::size_t want, std::vector<Event>& out) {
    std::size_t got = 0;
    const core::Time deadline = clock.now() + 30 * core::kSecond;
    while (got < want && clock.now() < deadline)
      got += rx.drain_until(deadline, clock, out);
    return got;
  }

  MonotonicClock clock;
  std::vector<Endpoint> endpoints;
  TcpTransport sender;
  TcpTransport receiver;
  Inbox rx0;
  Inbox rx1;
};

TEST(TcpWirePath, PerProducerFifoSurvivesConcurrentSendersAndCoalescing) {
  WirePair wire;
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 400;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;

  // Four threads race on node 0's writer queue, each sending its own
  // req_id sequence (producer * kPerProducer + seq, in seq order).
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t seq = 0; seq < kPerProducer; ++seq)
        wire.sender.send(0, 1, *make_accept(p * kPerProducer + seq));
    });
  }
  for (auto& t : producers) t.join();

  std::vector<Event> events;
  ASSERT_EQ(wire.drain(wire.rx1, kTotal, events), kTotal);  // nothing lost

  // Per-producer FIFO: each producer's req_ids arrive in send order even
  // though the four push sequences interleave arbitrarily.
  std::vector<std::uint64_t> next(kProducers, 0);
  for (const Event& e : events) {
    ASSERT_EQ(e.kind, Event::Kind::kMessage);
    ASSERT_EQ(e.payload->kind(), net::kKindM2Paxos + 2);
    const std::uint64_t id = static_cast<const m2p::Accept&>(*e.payload).req_id;
    const std::uint64_t p = id / kPerProducer;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(id % kPerProducer, next[p]) << "producer " << p;
    next[p] = id % kPerProducer + 1;
  }

  // Coalescing: the writer drains queue batches into single sendmsg()
  // flushes, so a burst this size takes far fewer syscalls than frames.
  EXPECT_GT(wire.sender.tx_flushes(), 0u);
  EXPECT_LT(wire.sender.tx_flushes(), kTotal);
}

TEST(TcpWirePath, QueueCapDropsAndCountsInsteadOfBufferingUnbounded) {
  TransportOptions tiny;
  tiny.max_queue_bytes = 256;  // room for a frame or two, not a burst
  WirePair wire(tiny);

  constexpr std::uint64_t kBurst = 2000;
  for (std::uint64_t i = 0; i < kBurst; ++i)
    wire.sender.send(0, 1, *make_accept(i));

  // The burst must overflow the cap (drops counted, send never blocks)
  // without losing everything: the first frame always fits an empty queue.
  const std::uint64_t dropped =
      wire.sender.counters().messages_dropped.load();
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, kBurst);
  std::vector<Event> events;
  EXPECT_GT(wire.drain(wire.rx1, kBurst - dropped, events), 0u);
}

TEST(TcpWirePath, ReconnectsAndDeliversAfterPeerRestart) {
  std::vector<Endpoint> endpoints = {{"127.0.0.1", free_port()},
                                     {"127.0.0.1", free_port()}};
  MonotonicClock clock;
  TcpTransport sender(endpoints);
  Inbox rx0;
  sender.attach(0, &rx0);
  sender.start();
  ASSERT_TRUE(sender.error().empty()) << sender.error();

  {
    TcpTransport receiver(endpoints);
    Inbox rx1;
    receiver.attach(1, &rx1);
    receiver.start();
    ASSERT_TRUE(receiver.error().empty()) << receiver.error();
    sender.send(0, 1, *make_accept(1));
    std::vector<Event> events;
    const core::Time deadline = clock.now() + 30 * core::kSecond;
    std::size_t got = 0;
    while (got == 0 && clock.now() < deadline)
      got = rx1.drain_until(deadline, clock, events);
    ASSERT_EQ(got, 1u);
    receiver.stop();
  }  // peer gone; the sender's established connection is now dead

  // Sends into the void are dropped and counted — never blocked on.
  const core::Time drop_deadline = clock.now() + 30 * core::kSecond;
  while (sender.counters().messages_dropped.load() == 0 &&
         clock.now() < drop_deadline) {
    sender.send(0, 1, *make_accept(2));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(sender.counters().messages_dropped.load(), 0u);

  // A fresh peer on the same endpoints: the writer reconnects on a later
  // flush and delivery resumes, with no sender restart.
  TcpTransport receiver(endpoints);
  Inbox rx1;
  receiver.attach(1, &rx1);
  receiver.start();
  ASSERT_TRUE(receiver.error().empty()) << receiver.error();
  std::vector<Event> events;
  std::size_t got = 0;
  const core::Time deadline = clock.now() + 30 * core::kSecond;
  while (got == 0 && clock.now() < deadline) {
    sender.send(0, 1, *make_accept(3));
    got = rx1.drain_until(clock.now() + 50 * core::kMillisecond, clock,
                          events);
  }
  EXPECT_GT(got, 0u);
  receiver.stop();
  sender.stop();
}

TEST(TcpWirePath, CorruptFrameIsCountedDroppedAndNeverDelivered) {
  std::vector<Endpoint> endpoints = {{"127.0.0.1", free_port()},
                                     {"127.0.0.1", free_port()}};
  TcpTransport receiver(endpoints);
  Inbox rx1;
  receiver.attach(1, &rx1);
  receiver.start();
  ASSERT_TRUE(receiver.error().empty()) << receiver.error();

  const std::vector<std::uint8_t> body = net::encode_payload(*make_accept(7));
  net::FrameHeader header;
  header.sender = 0;
  header.message_count = 1;
  header.body_bytes = body.size();

  const auto dial = [&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(endpoints[1].port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };
  const auto send_frame = [&](int fd) {
    const std::vector<std::uint8_t> head = header.encode();
    EXPECT_EQ(::send(fd, head.data(), head.size(), 0),
              static_cast<ssize_t>(head.size()));
    EXPECT_EQ(::send(fd, body.data(), body.size(), 0),
              static_cast<ssize_t>(body.size()));
  };

  // A frame whose body fails its CRC: the reader counts the corruption and
  // drops the connection without delivering — EOF here is the drop.
  header.checksum = net::crc32c(body.data(), body.size()) ^ 0xDEADBEEF;
  const int bad = dial();
  send_frame(bad);
  std::uint8_t byte;
  EXPECT_EQ(::recv(bad, &byte, 1, 0), 0);
  ::close(bad);
  EXPECT_EQ(receiver.counters().decode_failures.load(), 1u);
  std::vector<Event> events;
  EXPECT_EQ(rx1.pop_all(events), 0u);

  // A well-formed frame on a fresh connection still delivers: one corrupt
  // peer cannot poison the listener.
  header.checksum = net::crc32c(body.data(), body.size());
  const int good = dial();
  send_frame(good);
  MonotonicClock clock;
  const core::Time deadline = clock.now() + 30 * core::kSecond;
  std::size_t got = 0;
  while (got == 0 && clock.now() < deadline)
    got = rx1.drain_until(deadline, clock, events);
  ASSERT_EQ(got, 1u);
  ASSERT_EQ(events.front().payload->kind(), net::kKindM2Paxos + 2);
  EXPECT_EQ(static_cast<const m2p::Accept&>(*events.front().payload).req_id,
            7u);
  ::close(good);
  receiver.stop();
}

// ------------------------------------------------------------ spec files

TEST(ClusterSpec, ParsesFullDocument) {
  const char* text = R"({
    "protocol": "multipaxos",
    "seed": 9,
    "nodes": [
      {"host": "10.0.0.1", "port": 7101},
      {"host": "10.0.0.2", "port": 7102},
      {"host": "10.0.0.3", "port": 7103}
    ],
    "objects_per_node": 64,
    "enable_failure_detector": true,
    "batching": {"enabled": true, "max_commands": 8, "window_us": 100},
    "transport": {"max_coalesce_bytes": 65536, "max_queue_bytes": 1048576}
  })";
  ClusterSpec spec;
  std::string error;
  ASSERT_TRUE(ClusterSpec::parse(text, &spec, &error)) << error;
  EXPECT_EQ(spec.runtime.protocol, core::Protocol::kMultiPaxos);
  EXPECT_EQ(spec.runtime.seed, 9u);
  EXPECT_EQ(spec.runtime.cluster.n_nodes, 3);
  EXPECT_TRUE(spec.runtime.enable_failure_detector);
  ASSERT_EQ(spec.endpoints.size(), 3u);
  EXPECT_EQ(spec.endpoints[1].host, "10.0.0.2");
  EXPECT_EQ(spec.endpoints[1].port, 7102);
  EXPECT_EQ(spec.objects_per_node, 64u);
  EXPECT_TRUE(spec.runtime.cluster.batching.enabled);
  EXPECT_EQ(spec.runtime.cluster.batching.batch_max_commands, 8u);
  EXPECT_EQ(spec.runtime.cluster.batching.batch_window,
            100 * core::kMicrosecond);
  EXPECT_EQ(spec.transport.max_coalesce_bytes, 65536u);
  EXPECT_EQ(spec.transport.max_queue_bytes, 1048576u);
}

TEST(ClusterSpec, RejectsMalformedDocuments) {
  ClusterSpec spec;
  std::string error;
  EXPECT_FALSE(ClusterSpec::parse("not json", &spec, &error));
  EXPECT_FALSE(ClusterSpec::parse("{}", &spec, &error));  // no nodes
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}], "typo_key": 1})", &spec,
      &error));
  EXPECT_NE(error.find("typo_key"), std::string::npos);
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"protocol": "raft", "nodes": [{"host": "a", "port": 1}]})", &spec,
      &error));
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 99999}]})", &spec, &error));
  // Transport knobs: unknown keys and zero limits fail loudly.
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}],
          "transport": {"coalesce": 1}})",
      &spec, &error));
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}],
          "transport": {"max_queue_bytes": 0}})",
      &spec, &error));
}

// ---------------------------------------------------------------- facade

TEST(ClusterBuilder, RejectsInvalidConfigs) {
  std::string error;
  EXPECT_EQ(m2::ClusterBuilder().nodes(0).build(&error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(m2::ClusterBuilder().backend(m2::Backend::kTcp).build(&error),
            nullptr);  // kTcp without addresses
}

TEST(ClusterBuilder, SimAndLoopbackAgreeOnASmallRun) {
  for (const m2::Backend backend :
       {m2::Backend::kSim, m2::Backend::kLoopback}) {
    std::string error;
    auto cluster = m2::ClusterBuilder()
                       .protocol(m2::Protocol::kM2Paxos)
                       .backend(backend)
                       .nodes(3)
                       .objects_per_node(8)
                       .audit(true)
                       .build(&error);
    ASSERT_NE(cluster, nullptr) << error;
    for (NodeId n = 0; n < 3; ++n) {
      cluster->propose(n, {n * 8});
      cluster->propose(n, {0});  // everyone contends on object 0
    }
    EXPECT_TRUE(cluster->await_committed(6, 30 * core::kSecond));
    cluster->stop();
    const auto report = cluster->audit();
    EXPECT_TRUE(report.ok) << report.violation;
    EXPECT_EQ(cluster->committed(), 6u);
    EXPECT_GT(cluster->commit_latency().count(), 0u);
  }
}

}  // namespace
}  // namespace m2::runtime
