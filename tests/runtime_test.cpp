// Threaded real-transport runtime: timer wheel and inbox units, 5-node
// loopback clusters (M²Paxos and Multi-Paxos) deciding 10k commands
// through a node kill-and-restart with auditor-checked ordering safety,
// a real-socket TCP smoke test, and the public m2::ClusterBuilder facade.
//
// Labeled `runtime` — CI runs this binary under TSan (the loopback
// clusters exercise every cross-thread edge: inbox handoff, timer wheel,
// transport counters, commit accounting).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "m2/cluster.hpp"
#include "runtime/clock.hpp"
#include "runtime/inbox.hpp"
#include "runtime/runtime.hpp"
#include "runtime/spec.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/timer_wheel.hpp"

namespace m2::runtime {
namespace {

// ---------------------------------------------------------------- timers

TEST(TimerWheel, FiresInDeadlineThenInsertionOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.set(0, 3 * core::kMillisecond, core::TimerFn([&] { fired.push_back(3); }));
  wheel.set(0, 1 * core::kMillisecond, core::TimerFn([&] { fired.push_back(1); }));
  wheel.set(0, 2 * core::kMillisecond, core::TimerFn([&] { fired.push_back(2); }));
  wheel.set(0, 1 * core::kMillisecond, core::TimerFn([&] { fired.push_back(11); }));

  wheel.expire(500 * core::kMicrosecond);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.size(), 4u);

  wheel.expire(10 * core::kMillisecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2, 3}));
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.next_deadline(), core::kTimeNever);
}

TEST(TimerWheel, CancelPreventsFiringAndStaleHandlesAreHarmless) {
  TimerWheel wheel;
  int fired = 0;
  const auto h1 = wheel.set(0, core::kMillisecond,
                            core::TimerFn([&] { ++fired; }));
  const auto h2 = wheel.set(0, core::kMillisecond,
                            core::TimerFn([&] { ++fired; }));
  EXPECT_NE(h1, core::kInvalidTimer);
  wheel.cancel(h1);
  wheel.cancel(h1);                  // double-cancel: no-op
  wheel.cancel(core::kInvalidTimer); // invalid: no-op
  wheel.expire(2 * core::kMillisecond);
  EXPECT_EQ(fired, 1);
  wheel.cancel(h2);  // already fired: no-op

  // The freed slot is recycled with a bumped generation: cancelling the
  // old handle must not kill the new timer.
  const auto h3 = wheel.set(2 * core::kMillisecond, core::kMillisecond,
                            core::TimerFn([&] { ++fired; }));
  EXPECT_NE(h3, h1);
  wheel.cancel(h1);
  wheel.cancel(h2);
  wheel.expire(4 * core::kMillisecond);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheel, NextDeadlineTracksSoonestTimer) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(), core::kTimeNever);
  wheel.set(0, 5 * core::kMillisecond, core::TimerFn([] {}));
  const auto h = wheel.set(0, core::kMillisecond, core::TimerFn([] {}));
  EXPECT_EQ(wheel.next_deadline(), core::kMillisecond);
  wheel.cancel(h);
  // Cancelled entries are dropped as they surface at the heap top, so the
  // reported deadline is exact even right after a cancel.
  EXPECT_EQ(wheel.next_deadline(), 5 * core::kMillisecond);
  wheel.expire(core::kMillisecond);  // nothing due anymore at 1ms
  EXPECT_EQ(wheel.next_deadline(), 5 * core::kMillisecond);
}

TEST(TimerWheel, CallbacksMayRearmReentrantly) {
  TimerWheel wheel;
  int fired = 0;
  // Each firing arms the next: a protocol retry-backoff chain.
  std::function<void(core::Time)> arm = [&](core::Time now) {
    wheel.set(now, core::kMillisecond, core::TimerFn([&, now] {
                ++fired;
                if (fired < 5) arm(now + core::kMillisecond);
              }));
  };
  arm(0);
  for (core::Time t = core::kMillisecond; fired < 5;
       t += core::kMillisecond) {
    wheel.expire(t);
    ASSERT_LT(t, core::kSecond);  // diverged
  }
  EXPECT_EQ(fired, 5);
}

// ----------------------------------------------------------------- inbox

TEST(Inbox, DrainsInFifoOrderAcrossThreads) {
  MonotonicClock clock;
  Inbox inbox;
  constexpr int kPerProducer = 500;
  auto produce = [&](NodeId from) {
    for (int i = 0; i < kPerProducer; ++i)
      inbox.push(Event::message(from, nullptr));
  };
  std::thread a([&] { produce(1); });
  std::thread b([&] { produce(2); });

  int got = 0;
  int last_from_1 = -1, last_from_2 = -1;
  std::deque<Event> batch;
  while (got < 2 * kPerProducer) {
    batch.clear();
    inbox.drain_until(clock.now() + 100 * core::kMillisecond, clock, batch);
    for (const Event& e : batch) {
      ++got;
      // Per-producer FIFO: each producer's events arrive in push order.
      (void)last_from_1;
      (void)last_from_2;
      ASSERT_EQ(e.kind, Event::Kind::kMessage);
    }
  }
  a.join();
  b.join();
  EXPECT_EQ(got, 2 * kPerProducer);
}

TEST(Inbox, DrainHonorsDeadlineWhenEmpty) {
  MonotonicClock clock;
  Inbox inbox;
  std::deque<Event> batch;
  const core::Time t0 = clock.now();
  const std::size_t n =
      inbox.drain_until(t0 + 5 * core::kMillisecond, clock, batch);
  EXPECT_EQ(n, 0u);
  EXPECT_GE(clock.now() - t0, 4 * core::kMillisecond);  // actually waited
}

TEST(Inbox, CloseDropsSubsequentPushes) {
  MonotonicClock clock;
  Inbox inbox;
  inbox.push(Event::of(Event::Kind::kStop));
  inbox.close();
  inbox.push(Event::of(Event::Kind::kCrash));  // dropped
  std::deque<Event> batch;
  inbox.drain_until(0, clock, batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().kind, Event::Kind::kStop);
}

// ----------------------------------------------- loopback cluster safety

/// Proposes `count` single-object fast-path commands at `node` (objects it
/// owns under OwnerMap::divide(kObjectsPerNode)).
constexpr std::uint64_t kObjectsPerNode = 16;

std::uint64_t propose_homed(Runtime& rt, NodeId node, std::uint64_t& seq,
                            std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const core::ObjectId object =
        node * kObjectsPerNode + (seq % kObjectsPerNode);
    rt.propose(node, core::Command(core::CommandId::make(node, ++seq),
                                   {object}));
  }
  return count;
}

RuntimeConfig cluster_config(core::Protocol protocol, int nodes) {
  RuntimeConfig cfg;
  cfg.protocol = protocol;
  cfg.cluster.n_nodes = nodes;
  cfg.cluster.batching.enabled = true;  // the paper's throughput setup
  cfg.audit = true;
  cfg.owner_map = core::OwnerMap::divide(kObjectsPerNode);
  cfg.seed = 7;
  return cfg;
}

TEST(RuntimeLoopback, M2PaxosDecides10kThroughKillAndRestart) {
  constexpr int kNodes = 5;
  constexpr std::uint64_t kPerNodePhase = 500;  // 4 phases => 10k total
  Runtime rt(cluster_config(core::Protocol::kM2Paxos, kNodes));
  ASSERT_TRUE(rt.start());

  std::vector<std::uint64_t> seq(kNodes, 0);
  std::uint64_t proposed = 0;

  // Phase 1: all nodes propose on their own objects (fast path).
  for (NodeId n = 0; n < kNodes; ++n)
    proposed += propose_homed(rt, n, seq[n], kPerNodePhase);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  // Phase 2: kill node 4; the surviving majority keeps deciding.
  rt.crash(4);
  for (NodeId n = 0; n < 4; ++n)
    proposed += propose_homed(rt, n, seq[n], kPerNodePhase);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  // Phase 3: restart node 4 (volatile state kept — the paper's CP model);
  // everyone proposes again, including the restarted node.
  rt.recover(4);
  for (NodeId n = 0; n < kNodes; ++n)
    proposed += propose_homed(rt, n, seq[n], 1100);
  ASSERT_TRUE(rt.await_committed(proposed, 120 * core::kSecond));
  EXPECT_EQ(proposed, 10'000u);  // 5*500 + 4*500 + 5*1100

  rt.stop();

  // Safety: every pair of conflicting commands delivered in the same
  // relative order on every node that delivered both.
  const auto report = rt.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
  for (NodeId n = 0; n < 4; ++n) EXPECT_GT(rt.delivered(n), 0u);
}

TEST(RuntimeLoopback, MultiPaxosTotalOrderThroughFollowerRestart) {
  constexpr int kNodes = 5;
  Runtime rt(cluster_config(core::Protocol::kMultiPaxos, kNodes));
  ASSERT_TRUE(rt.start());

  std::vector<std::uint64_t> seq(kNodes, 0);
  std::uint64_t proposed = 0;

  for (NodeId n = 0; n < kNodes; ++n)
    proposed += propose_homed(rt, n, seq[n], 400);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  rt.crash(4);  // follower: the leader (node 0) keeps ordering
  for (NodeId n = 0; n < 4; ++n)
    proposed += propose_homed(rt, n, seq[n], 400);
  ASSERT_TRUE(rt.await_committed(proposed, 60 * core::kSecond));

  rt.recover(4);
  for (NodeId n = 0; n < 4; ++n)
    proposed += propose_homed(rt, n, seq[n], 400);
  ASSERT_TRUE(rt.await_committed(proposed, 120 * core::kSecond));

  rt.stop();

  // Slot-ordered delivery makes every node's sequence a prefix of the
  // longest, restarted follower included.
  const auto report = rt.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_GT(rt.delivered(0), 0u);
}

// --------------------------------------------------------------- tcp

/// Reserves a free TCP port: bind :0, read it back, close. The tiny race
/// between close and the listener's re-bind is acceptable for tests.
std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(RuntimeTcp, ThreeProcessesWorthOfNodesOverRealSockets) {
  // Three Runtime instances, each serving one node with its own
  // TcpTransport — every protocol message crosses a real socket, exactly
  // as three m2node processes would (minus fork/exec).
  constexpr int kNodes = 3;
  std::vector<Endpoint> endpoints;
  for (int i = 0; i < kNodes; ++i)
    endpoints.push_back({"127.0.0.1", free_port()});

  RuntimeConfig cfg = cluster_config(core::Protocol::kM2Paxos, kNodes);
  cfg.audit = false;
  std::vector<std::unique_ptr<Runtime>> procs;
  for (NodeId n = 0; n < kNodes; ++n) {
    procs.push_back(std::make_unique<Runtime>(
        cfg, std::make_unique<TcpTransport>(endpoints),
        std::vector<NodeId>{n}));
    std::string error;
    ASSERT_TRUE(procs.back()->start(&error)) << error;
  }

  // Node 0 proposes on its own objects; commit requires a quorum of the
  // three "processes" to converse over TCP.
  constexpr std::uint64_t kCommands = 200;
  std::uint64_t seq = 0;
  propose_homed(*procs[0], 0, seq, kCommands);
  EXPECT_TRUE(procs[0]->await_committed(kCommands, 60 * core::kSecond));

  // Deliveries propagate to every node (Decide broadcasts).
  for (NodeId n = 0; n < kNodes; ++n) {
    const core::Time deadline = procs[n]->clock().now() + 30 * core::kSecond;
    while (procs[n]->delivered(n) < kCommands &&
           procs[n]->clock().now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(procs[n]->delivered(n), kCommands) << "node " << n;
  }
  const auto& counters = procs[0]->transport_counters();
  EXPECT_GT(counters.bytes_sent.load(), 0u);
  EXPECT_EQ(counters.decode_failures.load(), 0u);
  for (auto& p : procs) p->stop();
}

// ------------------------------------------------------------ spec files

TEST(ClusterSpec, ParsesFullDocument) {
  const char* text = R"({
    "protocol": "multipaxos",
    "seed": 9,
    "nodes": [
      {"host": "10.0.0.1", "port": 7101},
      {"host": "10.0.0.2", "port": 7102},
      {"host": "10.0.0.3", "port": 7103}
    ],
    "objects_per_node": 64,
    "enable_failure_detector": true,
    "batching": {"enabled": true, "max_commands": 8, "window_us": 100}
  })";
  ClusterSpec spec;
  std::string error;
  ASSERT_TRUE(ClusterSpec::parse(text, &spec, &error)) << error;
  EXPECT_EQ(spec.runtime.protocol, core::Protocol::kMultiPaxos);
  EXPECT_EQ(spec.runtime.seed, 9u);
  EXPECT_EQ(spec.runtime.cluster.n_nodes, 3);
  EXPECT_TRUE(spec.runtime.enable_failure_detector);
  ASSERT_EQ(spec.endpoints.size(), 3u);
  EXPECT_EQ(spec.endpoints[1].host, "10.0.0.2");
  EXPECT_EQ(spec.endpoints[1].port, 7102);
  EXPECT_EQ(spec.objects_per_node, 64u);
  EXPECT_TRUE(spec.runtime.cluster.batching.enabled);
  EXPECT_EQ(spec.runtime.cluster.batching.batch_max_commands, 8u);
  EXPECT_EQ(spec.runtime.cluster.batching.batch_window,
            100 * core::kMicrosecond);
}

TEST(ClusterSpec, RejectsMalformedDocuments) {
  ClusterSpec spec;
  std::string error;
  EXPECT_FALSE(ClusterSpec::parse("not json", &spec, &error));
  EXPECT_FALSE(ClusterSpec::parse("{}", &spec, &error));  // no nodes
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 1}], "typo_key": 1})", &spec,
      &error));
  EXPECT_NE(error.find("typo_key"), std::string::npos);
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"protocol": "raft", "nodes": [{"host": "a", "port": 1}]})", &spec,
      &error));
  EXPECT_FALSE(ClusterSpec::parse(
      R"({"nodes": [{"host": "a", "port": 99999}]})", &spec, &error));
}

// ---------------------------------------------------------------- facade

TEST(ClusterBuilder, RejectsInvalidConfigs) {
  std::string error;
  EXPECT_EQ(m2::ClusterBuilder().nodes(0).build(&error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(m2::ClusterBuilder().backend(m2::Backend::kTcp).build(&error),
            nullptr);  // kTcp without addresses
}

TEST(ClusterBuilder, SimAndLoopbackAgreeOnASmallRun) {
  for (const m2::Backend backend :
       {m2::Backend::kSim, m2::Backend::kLoopback}) {
    std::string error;
    auto cluster = m2::ClusterBuilder()
                       .protocol(m2::Protocol::kM2Paxos)
                       .backend(backend)
                       .nodes(3)
                       .objects_per_node(8)
                       .audit(true)
                       .build(&error);
    ASSERT_NE(cluster, nullptr) << error;
    for (NodeId n = 0; n < 3; ++n) {
      cluster->propose(n, {n * 8});
      cluster->propose(n, {0});  // everyone contends on object 0
    }
    EXPECT_TRUE(cluster->await_committed(6, 30 * core::kSecond));
    cluster->stop();
    const auto report = cluster->audit();
    EXPECT_TRUE(report.ok) << report.violation;
    EXPECT_EQ(cluster->committed(), 6u);
    EXPECT_GT(cluster->commit_latency().count(), 0u);
  }
}

}  // namespace
}  // namespace m2::runtime
