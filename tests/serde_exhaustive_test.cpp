// Exhaustive serde round-trip coverage: every net::Payload kind, filled
// with seeded-random content (plus hand-picked edge variants: empty lists,
// zero/max-length bodies, batched slot values, max-u64 fields), must
// satisfy
//   (1) encode_payload(p).size() == p.wire_size()          (byte-exact model)
//   (2) decode_payload(encode_payload(p)) != nullptr        (round-trips)
//   (3) encode_payload(decode(encode(p))) == encode(p)      (decode is exact
//       inverse — re-encoding reproduces the identical byte string)
//   (4) decoded->wire_size() == encoded size                (model survives
//       the trip)
// Property (3) is the deep-equality check: two payloads that encode to the
// same bytes carry the same field values, without needing operator== on
// every message struct.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/failure_detector.hpp"
#include "epaxos/epaxos.hpp"
#include "genpaxos/genpaxos.hpp"
#include "m2paxos/messages.hpp"
#include "multipaxos/multipaxos.hpp"
#include "net/serde.hpp"
#include "sim/rng.hpp"

namespace m2::net {
namespace {

// Variants: 0 = minimal/empty, 1..2 = random typical, 3 = big/edge values.
constexpr int kVariants = 4;

core::Command rand_cmd(sim::Rng& rng, int variant) {
  core::ObjectList objects;
  std::size_t n_objects = 0;
  switch (variant) {
    case 0: n_objects = 0; break;                     // empty object set
    case 3: n_objects = 130; break;                   // 2-byte varint count
    default: n_objects = 1 + rng.uniform(4); break;
  }
  for (std::size_t i = 0; i < n_objects; ++i)
    objects.push_back(variant == 3 && i == 0 ? UINT64_MAX : rng.next());
  const std::uint32_t payload =
      variant == 0 ? 0 : static_cast<std::uint32_t>(rng.uniform(64));
  core::Command c(core::CommandId{variant == 3 ? UINT64_MAX : rng.next()},
                  std::move(objects), payload);
  c.noop = rng.chance(0.2);
  if (variant == 2) {
    // Attached body, including the zero-length edge.
    std::vector<std::uint8_t> body(rng.uniform(3) == 0 ? 0 : rng.uniform(200));
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.next());
    c.set_body(std::move(body));
  }
  return c;
}

core::CommandPtr rand_cmd_ptr(sim::Rng& rng, int variant) {
  return std::make_shared<const core::Command>(rand_cmd(rng, variant));
}

/// Batch tail behind a slot head: null for plain slots; variant 3 fills the
/// batch to capacity (decode rejects counts >= kCapacity, so capacity
/// itself must survive).
core::CommandBatchPtr rand_batch(sim::Rng& rng, int variant,
                                 const core::CommandPtr& head) {
  if (variant == 0 || (variant != 3 && rng.chance(0.4))) return nullptr;
  const std::size_t members =
      variant == 3 ? core::CommandBatch::kCapacity : 2 + rng.uniform(3);
  auto batch = std::make_shared<core::CommandBatch>();
  batch->cmds.push_back(head);
  for (std::size_t i = 1; i < members; ++i)
    batch->cmds.push_back(rand_cmd_ptr(rng, static_cast<int>(rng.uniform(3))));
  return batch;
}

std::vector<core::Command> rand_tail(sim::Rng& rng, int variant) {
  std::vector<core::Command> tail;
  const std::size_t n = variant == 0 ? 0 : rng.uniform(4);
  for (std::size_t i = 0; i < n; ++i)
    tail.push_back(rand_cmd(rng, static_cast<int>(rng.uniform(3))));
  return tail;
}

m2p::SlotList rand_slots(sim::Rng& rng, int variant) {
  m2p::SlotList slots;
  const std::size_t n = variant == 0 ? 0 : 1 + rng.uniform(4);
  for (std::size_t i = 0; i < n; ++i) {
    auto head = rand_cmd_ptr(rng, variant == 3 && i == 0 ? 3 : 1);
    auto batch = rand_batch(rng, variant, head);
    slots.emplace_back(rng.next(), rng.next(), rng.next(), std::move(head),
                       std::move(batch));
  }
  return slots;
}

std::vector<m2p::ViewHint> rand_hints(sim::Rng& rng, int variant) {
  std::vector<m2p::ViewHint> hints;
  const std::size_t n = variant == 0 ? 0 : rng.uniform(5);
  for (std::size_t i = 0; i < n; ++i)
    hints.push_back({rng.next(), rng.next(),
                     static_cast<NodeId>(rng.uniform(UINT32_MAX))});
  return hints;
}

ep::Attrs rand_attrs(sim::Rng& rng, int variant) {
  ep::Attrs attrs;
  attrs.seq = variant == 3 ? UINT64_MAX : rng.next();
  const std::size_t n = variant == 0 ? 0 : rng.uniform(30);
  for (std::size_t i = 0; i < n; ++i) attrs.deps.push_back(rng.next());
  return attrs;
}

using Factory = std::function<PayloadPtr(sim::Rng&, int)>;

std::vector<Factory> all_factories() {
  std::vector<Factory> f;
  // --- common ---------------------------------------------------------
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<core::Heartbeat>(
        v == 3 ? UINT32_MAX : static_cast<NodeId>(rng.uniform(1024)));
  });
  // --- Multi-Paxos ----------------------------------------------------
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<mp::ClientPropose>(rand_cmd(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<mp::Prepare>(v == 3 ? UINT64_MAX : rng.next(),
                                     rng.next());
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<mp::Promise>();
    m->ballot = rng.next();
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    m->ack = rng.chance(0.5);
    m->first_undelivered = rng.next();
    const std::size_t n = v == 0 ? 0 : 1 + rng.uniform(3);
    for (std::size_t i = 0; i < n; ++i)
      m->votes.push_back({rng.next(), rng.next(), rand_cmd(rng, v),
                          rand_tail(rng, v)});
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<mp::Accept>(rng.next(), rng.next(), rand_cmd(rng, v),
                                    rand_tail(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<mp::Accepted>();
    m->ballot = v == 3 ? UINT64_MAX : rng.next();
    m->slot = rng.next();
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    m->ack = rng.chance(0.5);
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<mp::Commit>(rng.next(), rand_cmd(rng, v),
                                    rand_tail(rng, v));
  });
  // --- Generalized Paxos ----------------------------------------------
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<gp::FastPropose>(rand_cmd(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<gp::FastAck>();
    m->cmd_id = core::CommandId{rng.next()};
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    // The modeled c-struct suffix materializes as padding on the wire.
    m->cstruct_bytes =
        v == 0 ? 0 : static_cast<std::uint32_t>(rng.uniform(4096));
    const std::size_t n = v == 0 ? 0 : 1 + rng.uniform(4);
    for (std::size_t i = 0; i < n; ++i)
      m->preds.push_back({rng.next(), core::CommandId{rng.next()}});
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<gp::CommitNotify>(rand_cmd(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<gp::ResolveReq>(rand_cmd(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<gp::SlowAccept>(rng.next(), rand_cmd(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<gp::SlowAck>();
    m->ballot = v == 3 ? UINT64_MAX : rng.next();
    m->cmd_id = core::CommandId{rng.next()};
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<gp::Sequence>(rng.next(), rand_cmd(rng, v));
  });
  // --- EPaxos ---------------------------------------------------------
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<ep::PreAccept>(rng.next(), rand_cmd(rng, v),
                                       rand_attrs(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<ep::PreAcceptReply>();
    m->inst = rng.next();
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    m->changed = rng.chance(0.5);
    m->attrs = rand_attrs(rng, v);
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<ep::AcceptMsg>(rng.next(), rand_cmd(rng, v),
                                       rand_attrs(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<ep::AcceptReply>();
    m->inst = v == 3 ? UINT64_MAX : rng.next();
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<ep::CommitMsg>(rng.next(), rand_cmd(rng, v),
                                       rand_attrs(rng, v));
  });
  // --- M²Paxos --------------------------------------------------------
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<m2p::Propose>(rand_cmd(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<m2p::Accept>(rng.next(), rand_slots(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<m2p::AckAccept>();
    m->req_id = rng.next();
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    m->ack = rng.chance(0.5);
    m->hints = rand_hints(rng, v);
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<m2p::Decide>(rand_slots(rng, v));
  });
  f.push_back([](sim::Rng& rng, int v) {
    std::vector<m2p::Prepare::Entry> entries;
    const std::size_t n = v == 0 ? 0 : 1 + rng.uniform(5);
    for (std::size_t i = 0; i < n; ++i)
      entries.push_back({rng.next(), rng.next(), rng.next()});
    return make_payload<m2p::Prepare>(rng.next(), std::move(entries));
  });
  f.push_back([](sim::Rng& rng, int v) {
    auto m = std::make_shared<m2p::AckPrepare>();
    m->req_id = rng.next();
    m->acceptor = static_cast<NodeId>(rng.uniform(1024));
    m->ack = rng.chance(0.5);
    const std::size_t n = v == 0 ? 0 : 1 + rng.uniform(3);
    for (std::size_t i = 0; i < n; ++i) {
      auto head = rand_cmd_ptr(rng, v);
      m->votes.push_back({rng.next(), rng.next(), rng.next(),
                          rng.chance(0.5), head});
      m->votes.back().batch = rand_batch(rng, v, head);
    }
    const std::size_t nf = v == 0 ? 0 : rng.uniform(4);
    for (std::size_t i = 0; i < nf; ++i)
      m->delivered_floors.emplace_back(rng.next(), rng.next());
    m->hints = rand_hints(rng, v);
    return m;
  });
  f.push_back([](sim::Rng& rng, int v) {
    m2p::SyncRequest::EntryList entries;
    const std::size_t n = v == 0 ? 0 : 1 + rng.uniform(20);
    for (std::size_t i = 0; i < n; ++i)
      entries.push_back({rng.next(), rng.next()});
    return make_payload<m2p::SyncRequest>(std::move(entries));
  });
  f.push_back([](sim::Rng& rng, int v) {
    return make_payload<m2p::SyncReply>(rand_slots(rng, v));
  });
  return f;
}

TEST(SerdeExhaustive, EveryKindRoundTripsByteExactly) {
  const auto factories = all_factories();
  // 27 payload kinds exist today; a new message type must be added here.
  ASSERT_EQ(factories.size(), 27u);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (std::size_t fi = 0; fi < factories.size(); ++fi) {
      for (int variant = 0; variant < kVariants; ++variant) {
        sim::Rng rng(seed * 1000 + fi * kVariants + variant);
        const PayloadPtr p = factories[fi](rng, variant);
        ASSERT_NE(p, nullptr);
        const auto bytes = encode_payload(*p);
        EXPECT_EQ(bytes.size(), p->wire_size())
            << p->name() << " seed " << seed << " variant " << variant;
        const PayloadPtr back = decode_payload(bytes);
        ASSERT_NE(back, nullptr)
            << p->name() << " seed " << seed << " variant " << variant;
        EXPECT_EQ(back->kind(), p->kind());
        const auto bytes2 = encode_payload(*back);
        EXPECT_EQ(bytes2, bytes)
            << p->name() << " seed " << seed << " variant " << variant
            << ": re-encoding the decoded payload changed the bytes";
        EXPECT_EQ(back->wire_size(), bytes.size())
            << p->name() << " seed " << seed << " variant " << variant;
      }
    }
  }
}

TEST(SerdeExhaustive, KindCoverageMatchesDecoder) {
  // Every kind the factories produce is distinct, and collectively they
  // cover all ranges the decoder dispatches on (spot-checked by count per
  // block: 1 common + 6 MP + 7 GP + 5 EP + 8 M2).
  const auto factories = all_factories();
  std::vector<std::uint32_t> kinds;
  for (const auto& make : factories) {
    sim::Rng rng(7);
    kinds.push_back(make(rng, 1)->kind());
  }
  std::sort(kinds.begin(), kinds.end());
  EXPECT_EQ(std::adjacent_find(kinds.begin(), kinds.end()), kinds.end());
  const auto in_range = [&](std::uint32_t lo, std::uint32_t hi) {
    return std::count_if(kinds.begin(), kinds.end(), [&](std::uint32_t k) {
      return k >= lo && k < hi;
    });
  };
  EXPECT_EQ(in_range(kKindCommon, kKindMultiPaxos), 1);
  EXPECT_EQ(in_range(kKindMultiPaxos, kKindGenPaxos), 6);
  EXPECT_EQ(in_range(kKindGenPaxos, kKindEPaxos), 7);
  EXPECT_EQ(in_range(kKindEPaxos, kKindM2Paxos), 5);
  EXPECT_EQ(in_range(kKindM2Paxos, kKindM2Paxos + 100), 8);
}

}  // namespace
}  // namespace m2::net
