// Wire-codec round-trip tests for every protocol message, plus
// malformed-input fuzzing: decode of any byte soup must return nullptr,
// never crash or over-allocate.
#include <gtest/gtest.h>

#include "core/failure_detector.hpp"
#include "epaxos/epaxos.hpp"
#include "genpaxos/genpaxos.hpp"
#include "m2paxos/messages.hpp"
#include "multipaxos/multipaxos.hpp"
#include "net/serde.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"

namespace m2::net {
namespace {

using test::cmd;

/// Round-trips `p` and returns the decoded payload, asserting success and
/// matching kind.
template <typename T>
std::shared_ptr<const T> round_trip(const T& p) {
  const auto bytes = encode_payload(p);
  const PayloadPtr decoded = decode_payload(bytes);
  EXPECT_NE(decoded, nullptr);
  if (decoded == nullptr) return nullptr;
  EXPECT_EQ(decoded->kind(), p.kind());
  return std::static_pointer_cast<const T>(decoded);
}

TEST(Serde, CommandRoundTripWithBody) {
  core::Command c = cmd(3, 77, {5, 9, 12}, 99);
  c.set_body({1, 2, 3, 4, 5});
  c.payload_bytes = 99;
  Writer w;
  write_command(w, c);
  Reader r(w.data());
  const auto back = read_command(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, c.id);
  EXPECT_EQ(back->objects, c.objects);
  EXPECT_EQ(back->payload_bytes, 99u);
  ASSERT_NE(back->body, nullptr);
  EXPECT_EQ(*back->body, *c.body);
}

TEST(Serde, NoopCommandRoundTrip) {
  core::Command noop(core::CommandId::make(1, (1ULL << 40) + 3), {7}, 0);
  noop.noop = true;
  Writer w;
  write_command(w, noop);
  Reader r(w.data());
  const auto back = read_command(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->noop);
  EXPECT_EQ(back->body, nullptr);
}

TEST(Serde, Heartbeat) {
  const auto back = round_trip(core::Heartbeat(17));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->sender, 17u);
}

TEST(Serde, MultiPaxosMessages) {
  auto c = cmd(2, 5, {1, 2});
  EXPECT_EQ(round_trip(mp::ClientPropose(c))->cmd.id, c.id);
  {
    const auto back = round_trip(mp::Prepare(9, 4));
    EXPECT_EQ(back->ballot, 9u);
    EXPECT_EQ(back->from_slot, 4u);
  }
  {
    mp::Promise p;
    p.ballot = 3;
    p.acceptor = 1;
    p.ack = true;
    p.first_undelivered = 6;
    p.votes.push_back({7, 2, c, {}});
    const auto back = round_trip(p);
    EXPECT_EQ(back->first_undelivered, 6u);
    ASSERT_EQ(back->votes.size(), 1u);
    EXPECT_EQ(back->votes[0].slot, 7u);
    EXPECT_EQ(back->votes[0].cmd.id, c.id);
  }
  {
    const auto back = round_trip(mp::Accept(3, 8, c));
    EXPECT_EQ(back->slot, 8u);
    EXPECT_EQ(back->cmd.objects, c.objects);
  }
  {
    mp::Accepted a;
    a.ballot = 3;
    a.slot = 8;
    a.acceptor = 2;
    a.ack = true;
    EXPECT_TRUE(round_trip(a)->ack);
  }
  EXPECT_EQ(round_trip(mp::Commit(8, c))->slot, 8u);
}

TEST(Serde, GenPaxosMessages) {
  auto c = cmd(1, 9, {4});
  EXPECT_EQ(round_trip(gp::FastPropose(c))->cmd.id, c.id);
  {
    gp::FastAck a;
    a.cmd_id = c.id;
    a.acceptor = 2;
    a.cstruct_bytes = 640;
    a.preds.push_back({4, core::CommandId::make(0, 1)});
    const auto back = round_trip(a);
    EXPECT_EQ(back->cstruct_bytes, 640u);
    ASSERT_EQ(back->preds.size(), 1u);
    EXPECT_EQ(back->preds[0].object, 4u);
  }
  EXPECT_EQ(round_trip(gp::CommitNotify(c))->cmd.id, c.id);
  EXPECT_EQ(round_trip(gp::ResolveReq(c))->cmd.id, c.id);
  EXPECT_EQ(round_trip(gp::SlowAccept(5, c))->ballot, 5u);
  {
    gp::SlowAck a;
    a.ballot = 5;
    a.cmd_id = c.id;
    a.acceptor = 0;
    EXPECT_EQ(round_trip(a)->cmd_id, c.id);
  }
  EXPECT_EQ(round_trip(gp::Sequence(42, c))->index, 42u);
}

TEST(Serde, EPaxosMessages) {
  auto c = cmd(0, 3, {2, 6});
  ep::Attrs attrs;
  attrs.seq = 12;
  attrs.deps = {ep::make_inst(1, 4), ep::make_inst(2, 9)};
  {
    const auto back = round_trip(ep::PreAccept(ep::make_inst(0, 3), c, attrs));
    EXPECT_EQ(back->attrs.seq, 12u);
    EXPECT_EQ(back->attrs.deps, attrs.deps);
  }
  {
    ep::PreAcceptReply rep;
    rep.inst = ep::make_inst(0, 3);
    rep.acceptor = 1;
    rep.changed = true;
    rep.attrs = attrs;
    const auto back = round_trip(rep);
    EXPECT_TRUE(back->changed);
    EXPECT_EQ(back->attrs.deps, attrs.deps);
  }
  EXPECT_EQ(round_trip(ep::AcceptMsg(ep::make_inst(0, 3), c, attrs))->attrs.seq,
            12u);
  {
    ep::AcceptReply rep;
    rep.inst = ep::make_inst(0, 3);
    rep.acceptor = 4;
    EXPECT_EQ(round_trip(rep)->acceptor, 4u);
  }
  EXPECT_EQ(round_trip(ep::CommitMsg(ep::make_inst(0, 3), c, attrs))->cmd.id,
            c.id);
}

TEST(Serde, M2PaxosMessages) {
  auto c = cmd(2, 11, {3, 8});
  EXPECT_EQ(round_trip(m2p::Propose(c))->cmd.id, c.id);
  {
    m2p::SlotList slots = {{3, 1, 2, c}, {8, 4, 2, c}};
    const auto back = round_trip(m2p::Accept(99, slots));
    EXPECT_EQ(back->req_id, 99u);
    ASSERT_EQ(back->slots.size(), 2u);
    EXPECT_EQ(back->slots[1].instance, 4u);
    EXPECT_EQ(back->slots[1].cmd->id, c.id);
  }
  {
    m2p::AckAccept a;
    a.req_id = 99;
    a.acceptor = 1;
    a.ack = false;
    a.hints.push_back({3, 7, 2});
    const auto back = round_trip(a);
    EXPECT_FALSE(back->ack);
    ASSERT_EQ(back->hints.size(), 1u);
    EXPECT_EQ(back->hints[0].epoch, 7u);
  }
  {
    const auto back = round_trip(m2p::Decide({{3, 1, 2, c}}));
    ASSERT_EQ(back->slots.size(), 1u);
  }
  {
    const auto back =
        round_trip(m2p::Prepare(7, {{3, 2, 5}, {8, 1, 6}}));
    ASSERT_EQ(back->entries.size(), 2u);
    EXPECT_EQ(back->entries[1].epoch, 6u);
  }
  {
    m2p::AckPrepare a;
    a.req_id = 7;
    a.acceptor = 0;
    a.ack = true;
    a.votes.push_back({3, 2, 4, true, c});
    a.delivered_floors.emplace_back(3, 9);
    const auto back = round_trip(a);
    ASSERT_EQ(back->votes.size(), 1u);
    EXPECT_TRUE(back->votes[0].decided);
    ASSERT_EQ(back->delivered_floors.size(), 1u);
    EXPECT_EQ(back->delivered_floors[0].second, 9u);
  }
  {
    const auto back =
        round_trip(m2p::SyncRequest(m2p::SyncRequest::EntryList{{3, 5}}));
    ASSERT_EQ(back->entries.size(), 1u);
    EXPECT_EQ(back->entries[0].from_instance, 5u);
  }
  {
    const auto back = round_trip(m2p::SyncReply({{3, 5, 0, c}}));
    ASSERT_EQ(back->slots.size(), 1u);
  }
}

TEST(Serde, M2PaxosBatchTails) {
  // Multi-command slot values: the batch tail rides behind the head in
  // Accept/Decide/SyncReply slots and in AckPrepare votes, and the decoded
  // batch must satisfy the head invariant (cmd == batch->cmds.front()).
  const auto head = std::make_shared<const core::Command>(cmd(1, 1, {7}));
  const auto t1 = std::make_shared<const core::Command>(cmd(1, 2, {7}));
  const auto t2 = std::make_shared<const core::Command>(cmd(2, 9, {7}));
  auto batch = std::make_shared<core::CommandBatch>();
  batch->cmds.push_back(head);
  batch->cmds.push_back(t1);
  batch->cmds.push_back(t2);

  auto check_slots = [&](const auto& slots) {
    ASSERT_EQ(slots.size(), 2u);
    ASSERT_NE(slots[0].batch, nullptr);
    ASSERT_EQ(slots[0].batch->cmds.size(), 3u);
    EXPECT_EQ(slots[0].cmd->id, head->id);
    EXPECT_EQ(slots[0].batch->cmds[0]->id, head->id);
    EXPECT_EQ(slots[0].batch->cmds[1]->id, t1->id);
    EXPECT_EQ(slots[0].batch->cmds[2]->id, t2->id);
    EXPECT_EQ(slots[1].batch, nullptr) << "plain slot must stay plain";
  };

  m2p::SlotList slots;
  slots.emplace_back(7, 3, 2, head, batch);
  slots.emplace_back(8, 1, 2, head, nullptr);
  {
    const auto back = round_trip(m2p::Accept(99, slots));
    check_slots(back->slots);
  }
  {
    const auto back = round_trip(m2p::Decide(slots));
    check_slots(back->slots);
  }
  {
    const auto back = round_trip(m2p::SyncReply(slots));
    check_slots(back->slots);
  }
  {
    m2p::AckPrepare a;
    a.req_id = 7;
    a.acceptor = 0;
    a.ack = true;
    a.votes.push_back({7, 3, 4, true, *head});
    a.votes.back().batch = batch;
    const auto back = round_trip(a);
    ASSERT_EQ(back->votes.size(), 1u);
    ASSERT_NE(back->votes[0].batch, nullptr);
    ASSERT_EQ(back->votes[0].batch->cmds.size(), 3u);
    EXPECT_EQ(back->votes[0].batch->cmds[2]->id, t2->id);
    EXPECT_EQ(back->votes[0].cmd->id, back->votes[0].batch->cmds[0]->id);
  }
}

TEST(Serde, MultiPaxosBatchTails) {
  auto h = cmd(0, 1, {3});
  auto t1 = cmd(0, 2, {3});
  auto t2 = cmd(1, 5, {3});
  const std::vector<core::Command> tail = {t1, t2};
  {
    const auto back = round_trip(mp::Accept(3, 8, h, tail));
    EXPECT_EQ(back->cmd.id, h.id);
    ASSERT_EQ(back->tail.size(), 2u);
    EXPECT_EQ(back->tail[0].id, t1.id);
    EXPECT_EQ(back->tail[1].id, t2.id);
  }
  {
    const auto back = round_trip(mp::Commit(8, h, tail));
    ASSERT_EQ(back->tail.size(), 2u);
    EXPECT_EQ(back->tail[1].id, t2.id);
  }
  {
    mp::Promise p;
    p.ballot = 3;
    p.acceptor = 1;
    p.ack = true;
    p.votes.push_back({7, 2, h, tail});
    const auto back = round_trip(p);
    ASSERT_EQ(back->votes.size(), 1u);
    ASSERT_EQ(back->votes[0].tail.size(), 2u);
    EXPECT_EQ(back->votes[0].tail[0].id, t1.id);
  }
}

TEST(Serde, WireSizeIsExact) {
  // wire_size() is byte-for-byte what the encoder emits (the exhaustive
  // sweep in serde_exhaustive_test.cpp covers every kind; this spot-checks
  // the contract in the round-trip suite too).
  auto c = cmd(2, 11, {3, 8});
  const net::Payload* payloads[] = {
      new mp::Accept(3, 8, c),
      new m2p::Accept(99, {{3, 1, 2, c}}),
      new ep::PreAccept(ep::make_inst(0, 3), c,
                        {12, {ep::make_inst(1, 4)}}),
      new gp::Sequence(42, c),
  };
  for (const auto* p : payloads) {
    EXPECT_EQ(encode_payload(*p).size(), p->wire_size()) << p->name();
    delete p;
  }
}

TEST(Serde, MalformedInputNeverCrashes) {
  sim::Rng rng(1234);
  // Random byte soup.
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.uniform(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    decode_payload(junk);  // must not crash; result may be null or garbage-free
  }
  // Truncations of a valid message at every length.
  auto c = cmd(2, 11, {3, 8});
  const auto good = encode_payload(m2p::Accept(99, {{3, 1, 2, c}}));
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_EQ(decode_payload(good.data(), len), nullptr) << "len " << len;
  }
  // Bit flips.
  for (int i = 0; i < 500; ++i) {
    auto mutated = good;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 << rng.uniform(8));
    decode_payload(mutated);  // any result is fine; no crash, no UB
  }
  // Same sweeps over a batched slot value (the batch-tail framing adds a
  // count + per-member commands that truncation/flipping must not trip on).
  const auto hp = std::make_shared<const core::Command>(cmd(2, 11, {3}));
  const auto tp = std::make_shared<const core::Command>(cmd(2, 12, {3}));
  auto batch = std::make_shared<core::CommandBatch>();
  batch->cmds.push_back(hp);
  batch->cmds.push_back(tp);
  m2p::SlotList bslots;
  bslots.emplace_back(3, 1, 2, hp, batch);
  const auto batched = encode_payload(m2p::Accept(99, bslots));
  for (std::size_t len = 0; len < batched.size(); ++len)
    EXPECT_EQ(decode_payload(batched.data(), len), nullptr) << "len " << len;
  for (int i = 0; i < 500; ++i) {
    auto mutated = batched;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 << rng.uniform(8));
    decode_payload(mutated);
  }
}

TEST(Serde, UnknownKindRejected) {
  Writer w;
  w.varint(777777);
  EXPECT_EQ(decode_payload(w.data()), nullptr);
}

}  // namespace
}  // namespace m2::net
