#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace m2::sim {
namespace {

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimestamps) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  q.pop().second();
  q.cancel(id);  // must not corrupt the queue
  q.schedule(20, [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.cancel(123456);
  q.cancel(kInvalidEvent);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 20);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1;
  sim.after(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.after(10, [&] { ++fired; });
  sim.after(50, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<Time> times;
  sim.after(10, [&] {
    times.push_back(sim.now());
    sim.after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(Simulator, RunLimitStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.after(i, [&] { ++fired; });
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform(17), 17u);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng r(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng r(13);
  std::vector<double> v(100001);
  for (auto& x : v) x = r.lognormal(2.0, 0.5);
  std::nth_element(v.begin(), v.begin() + 50000, v.end());
  EXPECT_NEAR(v[50000], 2.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream must not replay the parent's outputs.
  Rng parent2(5);
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next(), child2.next());
}

// ---------------------------------------------------------------------
// NodeCpu
// ---------------------------------------------------------------------

TEST(NodeCpu, SingleCoreSerializesJobs) {
  Simulator sim;
  NodeCpu cpu(sim, 1);
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) cpu.submit(0, 100, [&] { done.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done, (std::vector<Time>{100, 200, 300}));
}

TEST(NodeCpu, ParallelJobsUseAllCores) {
  Simulator sim;
  NodeCpu cpu(sim, 4);
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i) cpu.submit(0, 100, [&] { done.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done, (std::vector<Time>{100, 100, 100, 100}));
}

TEST(NodeCpu, SerialStageBottlenecksRegardlessOfCores) {
  Simulator sim;
  NodeCpu cpu(sim, 32);
  Time last = 0;
  for (int i = 0; i < 10; ++i) cpu.submit(100, 0, [&] { last = sim.now(); });
  sim.run();
  // All ten serial jobs pass through the single serial resource.
  EXPECT_EQ(last, 1000);
}

TEST(NodeCpu, SerialThenParallelPipeline) {
  Simulator sim;
  NodeCpu cpu(sim, 8);
  std::vector<Time> done;
  // Serial part 10, parallel part 100: the serial stage admits one job per
  // 10 time units, parallel fan-out overlaps.
  for (int i = 0; i < 4; ++i)
    cpu.submit(10, 100, [&] { done.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done, (std::vector<Time>{110, 120, 130, 140}));
}

TEST(NodeCpu, TracksBusyTimeAndJobs) {
  Simulator sim;
  NodeCpu cpu(sim, 2);
  cpu.submit(10, 90, [] {});
  cpu.submit(0, 50, [] {});
  sim.run();
  EXPECT_EQ(cpu.busy_time(), 150);
  EXPECT_EQ(cpu.serial_busy_time(), 10);
  EXPECT_EQ(cpu.jobs_completed(), 2u);
}

TEST(NodeCpu, MoreCoresIncreaseThroughput) {
  // The Fig. 4 mechanism in miniature: 1000 parallel jobs of cost 100.
  auto finish_time = [](int cores) {
    Simulator sim;
    NodeCpu cpu(sim, cores);
    for (int i = 0; i < 1000; ++i) cpu.submit(0, 100, [] {});
    sim.run();
    return sim.now();
  };
  const Time t4 = finish_time(4);
  const Time t16 = finish_time(16);
  EXPECT_NEAR(static_cast<double>(t4) / static_cast<double>(t16), 4.0, 0.1);
}

}  // namespace
}  // namespace m2::sim
