#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/series.hpp"

namespace m2::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.median(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (int v : {1, 2, 3, 4, 5}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_EQ(h.median(), 3);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.record(i);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0, 50000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 99000 * 0.04);
  EXPECT_NEAR(h.mean(), 50000.5, 1.0);
}

TEST(Histogram, LargeValuesBucketed) {
  Histogram h;
  const std::int64_t big = 123'456'789'000;  // ~123 s in ns
  h.record(big);
  EXPECT_EQ(h.max(), big);
  EXPECT_NEAR(static_cast<double>(h.median()), static_cast<double>(big),
              static_cast<double>(big) * 0.04);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.median(), 0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 1.0);
}

TEST(Histogram, BucketBoundsPartitionTheAxis) {
  // Buckets tile [0, INT64_MAX] with no gaps or overlaps, and bucket_of is
  // the inverse of bucket_bounds on every boundary value.
  std::int64_t expected_lo = 0;
  for (std::size_t b = 0; b < Histogram::bucket_count(); ++b) {
    const auto [lo, hi] = Histogram::bucket_bounds(b);
    ASSERT_EQ(lo, expected_lo) << "gap before bucket " << b;
    ASSERT_LT(lo, hi);
    ASSERT_EQ(Histogram::bucket_of(lo), b);
    ASSERT_EQ(Histogram::bucket_of(hi - 1), b);
    if (hi == INT64_MAX) return;  // top of the axis reached
    ASSERT_EQ(Histogram::bucket_of(hi), b + 1);
    expected_lo = hi;
  }
  FAIL() << "buckets never reached INT64_MAX";
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  // A single value reports itself at every quantile (interpolation clamps
  // to the recorded [min, max]).
  Histogram one;
  one.record(777);
  EXPECT_EQ(one.quantile(0.0), 777);
  EXPECT_EQ(one.quantile(0.5), 777);
  EXPECT_EQ(one.quantile(1.0), 777);

  // Uniform samples across one wide bucket: quantiles interpolate linearly
  // between the bucket edges instead of snapping to one of them.
  Histogram h;
  const auto [lo, hi] = Histogram::bucket_bounds(Histogram::bucket_of(1 << 20));
  const std::int64_t width = hi - lo;
  ASSERT_GE(width, 64);
  for (int rep = 0; rep < 16; ++rep)
    for (std::int64_t i = 0; i < 64; ++i) h.record(lo + i * (width / 64));
  const double tol = static_cast<double>(width) * 0.05;
  EXPECT_NEAR(static_cast<double>(h.quantile(0.25)),
              static_cast<double>(lo) + 0.25 * static_cast<double>(width), tol);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.75)),
              static_cast<double>(lo) + 0.75 * static_cast<double>(width), tol);
  EXPECT_LT(h.quantile(0.25), h.quantile(0.75));
}

TEST(Histogram, MergeIsAssociative) {
  // (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) agree bucket-for-bucket — the property the
  // cluster-wide fold in Cluster::merged_metrics relies on.
  Histogram a, b, c;
  std::uint64_t x = 12345;
  for (int i = 0; i < 3000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto v = static_cast<std::int64_t>(x >> 24);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
  }
  Histogram left = a;
  left.merge(b);
  left.merge(c);
  Histogram bc = b;
  bc.merge(c);
  Histogram right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  EXPECT_DOUBLE_EQ(left.mean(), right.mean());
  for (std::size_t i = 0; i < Histogram::bucket_count(); ++i)
    ASSERT_EQ(left.bucket_value(i), right.bucket_value(i)) << "bucket " << i;
  for (double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(left.quantile(q), right.quantile(q));
}

TEST(Histogram, OverflowValuesLandInTopBucket) {
  Histogram h;
  h.record(INT64_MAX);
  h.record(INT64_MAX - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), INT64_MAX);
  // Quantiles clamp to the recorded [min, max] even in the huge top
  // bucket, and the top reachable bucket's clamped upper edge is
  // INT64_MAX itself.
  EXPECT_GE(h.quantile(1.0), INT64_MAX - 1);
  EXPECT_GE(h.quantile(0.5), INT64_MAX - 1);
  const std::size_t top = Histogram::bucket_of(INT64_MAX);
  EXPECT_EQ(Histogram::bucket_of(INT64_MAX - 1), top);
  EXPECT_EQ(Histogram::bucket_bounds(top).second, INT64_MAX);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Summary, ComputesMoments) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_EQ(s.n, 5u);
}

TEST(Summary, EmptyIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Speedup, HandlesZeroDenominator) {
  EXPECT_DOUBLE_EQ(speedup(10, 2), 5.0);
  EXPECT_DOUBLE_EQ(speedup(10, 0), 0.0);
}

}  // namespace
}  // namespace m2::stats
