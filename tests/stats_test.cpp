#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/series.hpp"

namespace m2::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.median(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (int v : {1, 2, 3, 4, 5}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_EQ(h.median(), 3);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.record(i);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0, 50000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 99000 * 0.04);
  EXPECT_NEAR(h.mean(), 50000.5, 1.0);
}

TEST(Histogram, LargeValuesBucketed) {
  Histogram h;
  const std::int64_t big = 123'456'789'000;  // ~123 s in ns
  h.record(big);
  EXPECT_EQ(h.max(), big);
  EXPECT_NEAR(static_cast<double>(h.median()), static_cast<double>(big),
              static_cast<double>(big) * 0.04);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.median(), 0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 1.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Summary, ComputesMoments) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_EQ(s.n, 5u);
}

TEST(Summary, EmptyIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Speedup, HandlesZeroDenominator) {
  EXPECT_DOUBLE_EQ(speedup(10, 2), 5.0);
  EXPECT_DOUBLE_EQ(speedup(10, 0), 0.0);
}

}  // namespace
}  // namespace m2::stats
