// Anti-entropy (catch-up) extension tests: a replica that misses a Decide
// learns it from a peer's retention window instead of stalling until the
// next proposal on that object.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "m2paxos/m2paxos.hpp"
#include "test_util.hpp"
#include "workload/synthetic.hpp"

namespace m2::m2p {
namespace {

using test::cmd;

struct SyncCluster {
  explicit SyncCluster(int n, std::uint64_t seed = 1,
                       std::size_t gc_margin = 1024)
      : workload(wl::SyntheticConfig{n, 1000, 1.0, 0.0, 16, seed}),
        cfg(test::test_config(core::Protocol::kM2Paxos, n, seed)),
        cluster((cfg.cluster.sync_period = 5 * sim::kMillisecond,
                 cfg.cluster.gc_margin = gc_margin, cfg),
                workload) {
    cluster.set_measuring(true);
  }
  M2PaxosReplica& replica(NodeId n) {
    return cluster.replica_as<M2PaxosReplica>(n);
  }
  wl::SyntheticWorkload workload;
  harness::ExperimentConfig cfg;
  harness::Cluster cluster;
};

TEST(M2PaxosSync, LaggingReplicaCatchesUpViaSync) {
  SyncCluster t(3);
  // Cut node 2 off from node 0's messages: it will miss Accept AND Decide
  // for node 0's commands.
  t.cluster.network().set_link(0, 2, false);
  for (int i = 1; i <= 5; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(20 * sim::kMillisecond);
  EXPECT_EQ(t.cluster.delivered_at(0), 5u);
  EXPECT_EQ(t.cluster.delivered_at(1), 5u);
  EXPECT_EQ(t.cluster.delivered_at(2), 0u);

  // Heal, then decide one more command so node 2 observes a gap (a decided
  // slot above its frontier) — that arms its sync probe.
  t.cluster.network().set_link(0, 2, true);
  t.cluster.propose(0, cmd(0, 6, {0}));
  t.cluster.run_for(100 * sim::kMillisecond);

  EXPECT_EQ(t.cluster.delivered_at(2), 6u);
  EXPECT_GT(t.replica(2).counters().sync_slots_learned, 0u);
  const auto report = t.cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(M2PaxosSync, HealthyRunSendsNoProbes) {
  SyncCluster t(3);
  // Anti-entropy is demand-driven: with no losses there is nothing to
  // probe, and no periodic traffic may appear.
  for (int i = 1; i <= 10; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_idle();
  for (NodeId n = 0; n < 3; ++n)
    EXPECT_EQ(t.replica(n).counters().sync_probes, 0u) << "node " << n;
}

TEST(M2PaxosSync, FrontierGcKeepsOnlyTheSyncMargin) {
  // Tiny GC margin: slots more than 4 instances behind the delivery
  // frontier are truncated, on every node, while delivery stays intact.
  SyncCluster t(3, 1, /*gc_margin=*/4);
  for (int i = 1; i <= 20; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_idle();
  EXPECT_TRUE(test::all_delivered(t.cluster, 20));
  for (NodeId n = 0; n < 3; ++n) {
    const auto* st = t.replica(n).table().find(0);
    ASSERT_NE(st, nullptr) << "node " << n;
    EXPECT_EQ(st->last_appended, 20u) << "node " << n;
    // Retained window = exactly the margin below the frontier.
    EXPECT_EQ(st->log.base(), 20u + 1 - 4) << "node " << n;
    EXPECT_GT(t.replica(n).counters().gc_truncated_slots, 0u) << "node " << n;
  }
  const auto report = t.cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(M2PaxosSync, LateSyncBelowTruncationHorizonAnswersRetainedWindow) {
  // A replica that falls behind the cluster's truncation horizon probes
  // with a from_instance the peers have already garbage-collected. The
  // peers must answer from their retained window (their frontier summary)
  // — not crash, not rebind truncated slots — and the laggard must hold
  // its frontier rather than deliver a suffix with a missing prefix.
  SyncCluster t(3, 1, /*gc_margin=*/4);
  t.cluster.network().set_link(0, 2, false);
  t.cluster.network().set_link(1, 2, false);
  for (int i = 1; i <= 30; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(t.cluster.delivered_at(0), 30u);
  EXPECT_EQ(t.cluster.delivered_at(1), 30u);
  for (NodeId n = 0; n < 2; ++n)
    EXPECT_GT(t.replica(n).counters().gc_truncated_slots, 0u) << "node " << n;

  t.cluster.network().set_link(0, 2, true);
  t.cluster.network().set_link(1, 2, true);
  // The next Decide reaches node 2 and exposes the gap, arming its sync
  // probe — which asks for instance 1, far below the peers' log base.
  t.cluster.propose(0, cmd(0, 31, {0}));
  t.cluster.run_for(200 * sim::kMillisecond);

  EXPECT_EQ(t.cluster.delivered_at(1), 31u);
  EXPECT_GT(t.replica(2).counters().sync_probes, 0u);
  // The peers taught the retained decisions above their base...
  EXPECT_GT(t.replica(2).counters().sync_slots_learned, 0u);
  // ...but the truncated prefix is gone everywhere, so node 2's frontier
  // must hold at zero (prefix order forbids delivering the suffix alone).
  EXPECT_EQ(t.cluster.delivered_at(2), 0u);
  const auto report = t.cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(M2PaxosSync, LatePrepareBelowTruncationHorizonRespectsFloors) {
  // An acquisition whose from_instance lies below the quorum's truncation
  // horizon: the promise floors (delivered frontiers) must steer the new
  // owner's writes above the truncated range — never into it — and the
  // surviving replicas keep delivering.
  SyncCluster t(3, 1, /*gc_margin=*/4);
  t.cluster.network().set_link(0, 2, false);
  t.cluster.network().set_link(1, 2, false);
  for (int i = 1; i <= 30; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(50 * sim::kMillisecond);
  t.cluster.network().set_link(0, 2, true);
  t.cluster.network().set_link(1, 2, true);

  // The owner crashes; node 2 (frontier still 0) must take over object 0
  // with a Prepare starting at instance 1 — 26 instances below node 1's
  // log base.
  t.cluster.crash(0);
  t.cluster.propose(2, cmd(2, 1, {0}));
  t.cluster.run_for(500 * sim::kMillisecond);

  EXPECT_GT(t.replica(2).counters().acquisitions, 0u);
  // Node 1's promise carried floor 30: the command landed above it and
  // node 1's sequence extended past its old frontier intact. (The frontier
  // may advance past 31 — repeated takeover rounds fill their skipped
  // slots with no-ops — but exactly one non-noop command was added.)
  EXPECT_EQ(t.cluster.delivered_at(1), 31u);
  const auto* st1 = t.replica(1).table().find(0);
  ASSERT_NE(st1, nullptr);
  EXPECT_GE(st1->last_appended, 31u);
  const auto report = t.cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(M2PaxosSync, SyncRepairsLostDecideWithoutNewProposals) {
  SyncCluster t(3);
  // Establish traffic, then drop node 0 -> node 1 for a burst, then heal:
  // node 1 misses decides but another decision creates the gap signal.
  for (int i = 1; i <= 3; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(10 * sim::kMillisecond);
  t.cluster.network().set_link(0, 1, false);
  for (int i = 4; i <= 6; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(10 * sim::kMillisecond);
  t.cluster.network().set_link(0, 1, true);
  // One more command after healing delivers the gap evidence to node 1.
  t.cluster.propose(0, cmd(0, 7, {0}));
  t.cluster.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(t.cluster.delivered_at(1), 7u);
  const auto report = t.cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

}  // namespace
}  // namespace m2::m2p
