// Anti-entropy (catch-up) extension tests: a replica that misses a Decide
// learns it from a peer's retention window instead of stalling until the
// next proposal on that object.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "m2paxos/m2paxos.hpp"
#include "test_util.hpp"
#include "workload/synthetic.hpp"

namespace m2::m2p {
namespace {

using test::cmd;

struct SyncCluster {
  explicit SyncCluster(int n, std::uint64_t seed = 1)
      : workload(wl::SyntheticConfig{n, 1000, 1.0, 0.0, 16, seed}),
        cfg(test::test_config(core::Protocol::kM2Paxos, n, seed)),
        cluster((cfg.cluster.sync_period = 5 * sim::kMillisecond, cfg),
                workload) {
    cluster.set_measuring(true);
  }
  M2PaxosReplica& replica(NodeId n) {
    return cluster.replica_as<M2PaxosReplica>(n);
  }
  wl::SyntheticWorkload workload;
  harness::ExperimentConfig cfg;
  harness::Cluster cluster;
};

TEST(M2PaxosSync, LaggingReplicaCatchesUpViaSync) {
  SyncCluster t(3);
  // Cut node 2 off from node 0's messages: it will miss Accept AND Decide
  // for node 0's commands.
  t.cluster.network().set_link(0, 2, false);
  for (int i = 1; i <= 5; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(20 * sim::kMillisecond);
  EXPECT_EQ(t.cluster.delivered_at(0), 5u);
  EXPECT_EQ(t.cluster.delivered_at(1), 5u);
  EXPECT_EQ(t.cluster.delivered_at(2), 0u);

  // Heal, then decide one more command so node 2 observes a gap (a decided
  // slot above its frontier) — that arms its sync probe.
  t.cluster.network().set_link(0, 2, true);
  t.cluster.propose(0, cmd(0, 6, {0}));
  t.cluster.run_for(100 * sim::kMillisecond);

  EXPECT_EQ(t.cluster.delivered_at(2), 6u);
  EXPECT_GT(t.replica(2).counters().sync_slots_learned, 0u);
  const auto report = t.cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(M2PaxosSync, HealthyRunSendsNoProbes) {
  SyncCluster t(3);
  // Anti-entropy is demand-driven: with no losses there is nothing to
  // probe, and no periodic traffic may appear.
  for (int i = 1; i <= 10; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_idle();
  for (NodeId n = 0; n < 3; ++n)
    EXPECT_EQ(t.replica(n).counters().sync_probes, 0u) << "node " << n;
}

TEST(M2PaxosSync, RetentionServesRecentSlotsOnly) {
  SyncCluster t(3);
  // Small retention: old slots are evicted from the ring.
  // (cfg already built; retention default is large — we exercise eviction
  // by delivering more commands than the window.)
  const std::size_t retention = t.cfg.cluster.sync_retention;
  EXPECT_GT(retention, 0u);
  for (int i = 1; i <= 20; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_idle();
  // All slots delivered; the retention ring holds the most recent ones and
  // the table still contains them (retained, not pruned).
  const auto* st = t.replica(1).table().find(0);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->last_appended, 20u);
  EXPECT_FALSE(st->slots.empty());  // retained decided slots
}

TEST(M2PaxosSync, SyncRepairsLostDecideWithoutNewProposals) {
  SyncCluster t(3);
  // Establish traffic, then drop node 0 -> node 1 for a burst, then heal:
  // node 1 misses decides but another decision creates the gap signal.
  for (int i = 1; i <= 3; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(10 * sim::kMillisecond);
  t.cluster.network().set_link(0, 1, false);
  for (int i = 4; i <= 6; ++i) t.cluster.propose(0, cmd(0, i, {0}));
  t.cluster.run_for(10 * sim::kMillisecond);
  t.cluster.network().set_link(0, 1, true);
  // One more command after healing delivers the gap evidence to node 1.
  t.cluster.propose(0, cmd(0, 7, {0}));
  t.cluster.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(t.cluster.delivered_at(1), 7u);
  const auto report = t.cluster.audit_consistency();
  EXPECT_TRUE(report.ok) << report.violation;
}

}  // namespace
}  // namespace m2::m2p
