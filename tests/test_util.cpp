#include "test_util.hpp"

namespace m2::test {

core::Command cmd(NodeId proposer, std::uint64_t seq,
                  core::ObjectList objects, std::uint32_t payload) {
  return core::Command(core::CommandId::make(proposer, seq),
                       std::move(objects), payload);
}

harness::ExperimentConfig test_config(core::Protocol protocol, int n_nodes,
                                      std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.cluster.n_nodes = n_nodes;
  cfg.cluster.cores_per_node = 4;
  cfg.cluster.forward_timeout = 20 * sim::kMillisecond;
  cfg.network.batching = false;
  cfg.seed = seed;
  cfg.audit = true;
  return cfg;
}

std::vector<core::CStruct> collect_cstructs(const harness::Cluster& cluster) {
  return cluster.cstructs();
}

bool all_delivered(const harness::Cluster& cluster, std::uint64_t expected) {
  for (int n = 0; n < cluster.n_nodes(); ++n) {
    if (cluster.delivered_at(static_cast<NodeId>(n)) != expected) return false;
  }
  return true;
}

}  // namespace m2::test
