#pragma once

#include <memory>
#include <vector>

#include "core/command.hpp"
#include "core/cstruct.hpp"
#include "harness/cluster.hpp"

namespace m2::test {

/// Builds a command `proposer:seq` over the given objects.
core::Command cmd(NodeId proposer, std::uint64_t seq,
                  core::ObjectList objects, std::uint32_t payload = 16);

/// An ExperimentConfig tuned for unit tests: small, deterministic, fast
/// timers, auditing on.
harness::ExperimentConfig test_config(core::Protocol protocol, int n_nodes,
                                      std::uint64_t seed = 1);

/// Collects each node's audited C-struct from the cluster.
std::vector<core::CStruct> collect_cstructs(const harness::Cluster& cluster);

/// True iff every node delivered exactly `expected` non-noop commands.
bool all_delivered(const harness::Cluster& cluster, std::uint64_t expected);

}  // namespace m2::test
