#include <gtest/gtest.h>

#include <sstream>

#include "harness/cluster.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"
#include "workload/synthetic.hpp"

namespace m2::trace {
namespace {

TEST(Recorder, DisabledByDefaultAndCheap) {
  Recorder r;
  EXPECT_FALSE(r.enabled());
  r.record({1, 0, Event::Kind::kSend, 1, "X", 0});
  EXPECT_EQ(r.size(), 0u);
}

TEST(Recorder, RingBounded) {
  Recorder r(4);
  r.set_enabled(true);
  for (int i = 0; i < 10; ++i)
    r.record({i, 0, Event::Kind::kSend, 1, "X", static_cast<std::uint64_t>(i)});
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.total_recorded(), 10u);
  std::ostringstream os;
  r.dump(os);
  // Only the newest four survive.
  EXPECT_EQ(os.str().find("#2"), std::string::npos);
  EXPECT_NE(os.str().find("#9"), std::string::npos);
}

TEST(Recorder, DumpLastN) {
  Recorder r;
  r.set_enabled(true);
  for (int i = 0; i < 10; ++i)
    r.record({i, static_cast<NodeId>(i % 2), Event::Kind::kDeliver, kNoNode,
              "", static_cast<std::uint64_t>(i + 1)});
  std::ostringstream os;
  r.dump(os, 3);
  EXPECT_NE(os.str().find("last 3 of 10"), std::string::npos);
}

TEST(Recorder, NodeFilter) {
  Recorder r;
  r.set_enabled(true);
  r.record({1, 0, Event::Kind::kSend, 1, "A", 1});
  r.record({2, 1, Event::Kind::kSend, 0, "B", 2});
  std::ostringstream os;
  r.dump_node(os, 1);
  EXPECT_NE(os.str().find("B"), std::string::npos);
  EXPECT_EQ(os.str().find(" A"), std::string::npos);
}

TEST(ClusterTrace, RecordsProtocolActivity) {
  wl::SyntheticWorkload workload({3, 100, 1.0, 0.0, 16, 1});
  auto cfg = test::test_config(core::Protocol::kM2Paxos, 3, 1);
  harness::Cluster cluster(cfg, workload);
  cluster.set_measuring(true);
  cluster.recorder().set_enabled(true);
  cluster.propose(0, test::cmd(0, 1, {0}));
  cluster.run_idle();

  EXPECT_GT(cluster.recorder().total_recorded(), 0u);
  std::ostringstream os;
  cluster.recorder().dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("M2.Accept"), std::string::npos);
  EXPECT_NE(out.find("deliver"), std::string::npos);
}

TEST(ClusterTrace, CrashAndRecoveryAppear) {
  wl::SyntheticWorkload workload({3, 100, 1.0, 0.0, 16, 1});
  auto cfg = test::test_config(core::Protocol::kM2Paxos, 3, 1);
  harness::Cluster cluster(cfg, workload);
  cluster.recorder().set_enabled(true);
  cluster.crash(2);
  cluster.recover(2);
  std::ostringstream os;
  cluster.recorder().dump(os);
  EXPECT_NE(os.str().find("crash"), std::string::npos);
  EXPECT_NE(os.str().find("recover"), std::string::npos);
}

}  // namespace
}  // namespace m2::trace
