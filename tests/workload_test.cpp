#include <gtest/gtest.h>

#include <map>

#include "workload/synthetic.hpp"
#include "workload/tpcc.hpp"

namespace m2::wl {
namespace {

TEST(Synthetic, FullLocalityStaysInOwnPartition) {
  SyntheticWorkload w({5, 1000, 1.0, 0.0, 16, 1});
  for (int i = 0; i < 1000; ++i) {
    const auto c = w.next(2);
    ASSERT_EQ(c.objects.size(), 1u);
    EXPECT_EQ(w.default_owner(c.objects[0]), 2u);
  }
}

TEST(Synthetic, ZeroLocalityAlwaysRemote) {
  SyntheticWorkload w({5, 1000, 0.0, 0.0, 16, 2});
  for (int i = 0; i < 1000; ++i) {
    const auto c = w.next(2);
    EXPECT_NE(w.default_owner(c.objects[0]), 2u);
  }
}

TEST(Synthetic, LocalityFractionApproximatelyRespected) {
  SyntheticWorkload w({5, 1000, 0.7, 0.0, 16, 3});
  int local = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (w.default_owner(w.next(1).objects[0]) == 1) ++local;
  EXPECT_NEAR(static_cast<double>(local) / n, 0.7, 0.02);
}

TEST(Synthetic, ComplexCommandsTouchTwoObjects) {
  SyntheticWorkload w({5, 1000, 1.0, 1.0, 16, 4});
  int two = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto c = w.next(0);
    // First object local-set, second uniform; they can rarely coincide.
    if (c.objects.size() == 2) ++two;
    EXPECT_LE(c.objects.size(), 2u);
  }
  EXPECT_GT(two, 950);
}

TEST(Synthetic, CommandIdsUniquePerProposer) {
  SyntheticWorkload w({3, 10, 1.0, 0.0, 16, 5});
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ids.insert(w.next(0).id.value).second);
    EXPECT_TRUE(ids.insert(w.next(1).id.value).second);
  }
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticWorkload a({3, 100, 0.5, 0.2, 16, 9});
  SyntheticWorkload b({3, 100, 0.5, 0.2, 16, 9});
  for (int i = 0; i < 200; ++i) {
    const auto ca = a.next(i % 3);
    const auto cb = b.next(i % 3);
    EXPECT_EQ(ca.id.value, cb.id.value);
    EXPECT_EQ(ca.objects, cb.objects);
  }
}

// ---------------------------------------------------------------------
// TPC-C
// ---------------------------------------------------------------------

TEST(Tpcc, ProfileMixMatchesSpec) {
  TpccWorkload w({5, 10, 0.0, 1});
  std::map<TpccProfile, int> mix;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    w.next(static_cast<NodeId>(i % 5));
    ++mix[w.last_profile()];
  }
  EXPECT_NEAR(mix[TpccProfile::kNewOrder] / double(n), 0.45, 0.01);
  EXPECT_NEAR(mix[TpccProfile::kPayment] / double(n), 0.43, 0.01);
  EXPECT_NEAR(mix[TpccProfile::kOrderStatus] / double(n), 0.04, 0.005);
  EXPECT_NEAR(mix[TpccProfile::kDelivery] / double(n), 0.04, 0.005);
  EXPECT_NEAR(mix[TpccProfile::kStockLevel] / double(n), 0.04, 0.005);
}

TEST(Tpcc, WarehousesPartitionedAcrossNodes) {
  TpccWorkload w({3, 10, 0.0, 2});
  EXPECT_EQ(w.total_warehouses(), 30);
  EXPECT_EQ(w.default_owner(TpccWorkload::warehouse_obj(0)), 0u);
  EXPECT_EQ(w.default_owner(TpccWorkload::warehouse_obj(9)), 0u);
  EXPECT_EQ(w.default_owner(TpccWorkload::warehouse_obj(10)), 1u);
  EXPECT_EQ(w.default_owner(TpccWorkload::warehouse_obj(29)), 2u);
  EXPECT_EQ(w.default_owner(TpccWorkload::district_obj(15, 3)), 1u);
  EXPECT_EQ(w.default_owner(TpccWorkload::stock_obj(25, 100)), 2u);
}

TEST(Tpcc, ZeroRemoteKeepsHomeWarehouseLocalMostly) {
  // With remote_warehouse_prob = 0, the *home* warehouse is always local;
  // only the 15 % remote-customer payments and 1 % remote stock lines may
  // additionally touch other partitions. So every command includes at
  // least one object of the proposer's partition.
  TpccWorkload w({3, 10, 0.0, 3});
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto c = w.next(1);
    bool touches_home = false;
    for (const auto obj : c.objects)
      if (w.default_owner(obj) == 1u) touches_home = true;
    EXPECT_TRUE(touches_home);
  }
}

TEST(Tpcc, PaymentsTouchRemoteCustomers15Percent) {
  TpccWorkload w({5, 10, 0.0, 4});
  int payments = 0, remote = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto c = w.next(2);
    if (w.last_profile() != TpccProfile::kPayment) continue;
    ++payments;
    for (const auto obj : c.objects)
      if (w.default_owner(obj) != 2u) {
        ++remote;
        break;
      }
  }
  ASSERT_GT(payments, 1000);
  // 15 % of payments pick a uniformly random *other* warehouse; with 50
  // warehouses, 9 of the 49 candidates still belong to the proposer's own
  // partition, so cross-partition payments are 0.15 * 40/49.
  EXPECT_NEAR(static_cast<double>(remote) / payments, 0.15 * 40.0 / 49.0,
              0.02);
}

TEST(Tpcc, RemoteWarehouseKnobRedirectsHome) {
  TpccWorkload w({5, 10, 1.0, 5});
  int remote_home = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto c = w.next(2);
    const int wh = TpccWorkload::warehouse_of(c.objects.front());
    if (w.default_owner(TpccWorkload::warehouse_obj(wh)) != 2u) ++remote_home;
  }
  // Uniform across 50 warehouses: ~80 % land outside node 2's 10.
  EXPECT_NEAR(static_cast<double>(remote_home) / n, 0.8, 0.05);
}

TEST(Tpcc, NewOrderTouchesWarehouseDistrictCustomerStock) {
  TpccWorkload w({1, 1, 0.0, 6});
  for (int i = 0; i < 200; ++i) {
    const auto c = w.next(0);
    if (w.last_profile() != TpccProfile::kNewOrder) continue;
    // >= warehouse + district + customer + >=5 stock buckets (dedup may
    // merge stock buckets).
    EXPECT_GE(c.objects.size(), 6u);
    EXPECT_GT(c.payload_bytes, 80u);  // multi-parameter command
  }
}

TEST(Tpcc, CommandsCarryBiggerPayloadsThanSynthetic) {
  TpccWorkload tpcc({3, 10, 0.0, 7});
  SyntheticWorkload synth({3, 1000, 1.0, 0.0, 16, 7});
  double tpcc_bytes = 0, synth_bytes = 0;
  for (int i = 0; i < 1000; ++i) {
    tpcc_bytes += static_cast<double>(tpcc.next(0).wire_size());
    synth_bytes += static_cast<double>(synth.next(0).wire_size());
  }
  EXPECT_GT(tpcc_bytes, 2 * synth_bytes);
}

}  // namespace
}  // namespace m2::wl
