#include <gtest/gtest.h>

#include <map>

#include "workload/synthetic.hpp"
#include "workload/zipf.hpp"

namespace m2::wl {
namespace {

TEST(Zipf, InBounds) {
  Zipf z(100, 0.99);
  sim::Rng rng(1);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, SingleElement) {
  Zipf z(1, 0.5);
  sim::Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, HotKeyDominatesAtHighTheta) {
  Zipf z(1000, 0.99);
  sim::Rng rng(3);
  std::map<std::uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  // Rank-0 frequency for theta=0.99 over 1000 keys is ~1/zeta ~ 13%.
  EXPECT_GT(counts[0], n / 12);
  // And the top key beats key 500 by a wide margin.
  EXPECT_GT(counts[0], 50 * (counts[500] + 1));
}

TEST(Zipf, LowThetaIsNearUniform) {
  Zipf z(100, 0.01);
  sim::Rng rng(4);
  std::map<std::uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  // No key should exceed ~3x the uniform share.
  for (const auto& [k, c] : counts) EXPECT_LT(c, 3 * n / 100) << "key " << k;
}

TEST(Zipf, RankFrequenciesDecrease) {
  Zipf z(50, 0.9);
  sim::Rng rng(5);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 300000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[25]);
}

TEST(SyntheticSkew, SkewedWorkloadStaysInPartition) {
  SyntheticConfig cfg{5, 100, 1.0, 0.0, 16, 6};
  cfg.zipf_theta = 0.99;
  SyntheticWorkload w(cfg);
  std::map<core::ObjectId, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const auto c = w.next(2);
    EXPECT_EQ(w.default_owner(c.objects[0]), 2u);
    ++counts[c.objects[0]];
  }
  // The partition's rank-0 object (id 200) is the hot key.
  EXPECT_GT(counts[200], 1500);
}

}  // namespace
}  // namespace m2::wl
