// bench_diff — perf-regression comparator for BENCH_*.json artifacts.
//
// Compares the flat "results" map of a fresh bench run against a committed
// baseline document and exits non-zero when a regression crosses the fail
// threshold. Direction is inferred per key (throughput-like keys regress
// down, latency-like keys regress up, allocs/decided is a hard gate), so
// the CI perf-gate job needs no per-metric configuration:
//
//   bench_diff --baseline BENCH_protocol.quick.json --fresh BENCH_protocol.json
//   bench_diff --baseline a.json --fresh b.json --warn 10 --fail 25
//
// Exit codes: 0 ok/warn-only, 1 fail-level regression (or unreadable
// input), 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stats/bench_diff.hpp"
#include "stats/export.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline FILE --fresh FILE [--warn PCT] "
               "[--fail PCT] [--alloc-slack N]\n"
               "  --baseline FILE    committed baseline BENCH_*.json\n"
               "  --fresh FILE       freshly produced BENCH_*.json\n"
               "  --warn PCT         warn threshold, %% regression (default 10)\n"
               "  --fail PCT         fail threshold, %% regression (default 25)\n"
               "  --alloc-slack N    allowed allocs/decided increase (default 0.5)\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  m2::stats::DiffThresholds thresholds;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strcmp(flag, "--baseline") == 0) {
      baseline_path = need_value(i);
    } else if (std::strcmp(flag, "--fresh") == 0) {
      fresh_path = need_value(i);
    } else if (std::strcmp(flag, "--warn") == 0) {
      thresholds.warn_pct = std::atof(need_value(i));
    } else if (std::strcmp(flag, "--fail") == 0) {
      thresholds.fail_pct = std::atof(need_value(i));
    } else if (std::strcmp(flag, "--alloc-slack") == 0) {
      thresholds.alloc_slack = std::atof(need_value(i));
    } else {
      usage(argv[0]);
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) usage(argv[0]);
  if (thresholds.fail_pct < thresholds.warn_pct) {
    std::fprintf(stderr, "--fail (%g) must be >= --warn (%g)\n",
                 thresholds.fail_pct, thresholds.warn_pct);
    return 2;
  }

  m2::stats::Json baseline;
  m2::stats::Json fresh;
  std::string error;
  if (!m2::stats::read_json_file(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "cannot read baseline %s: %s\n", baseline_path.c_str(),
                 error.c_str());
    return 1;
  }
  if (!m2::stats::read_json_file(fresh_path, &fresh, &error)) {
    std::fprintf(stderr, "cannot read fresh %s: %s\n", fresh_path.c_str(),
                 error.c_str());
    return 1;
  }

  std::printf("baseline: %s\nfresh:    %s\n", baseline_path.c_str(),
              fresh_path.c_str());
  const m2::stats::DiffReport report =
      m2::stats::diff_bench_docs(baseline, fresh, thresholds);
  std::fputs(m2::stats::format_report(report, thresholds).c_str(), stdout);
  return report.worst == m2::stats::DiffSeverity::kFail ? 1 : 0;
}
