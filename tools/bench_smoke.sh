#!/usr/bin/env bash
# Smoke check for the self-timed hot-path benchmarks.
#
# Builds the micro_sim and micro_protocol targets in Release mode, runs
# each in quick mode under a wall-clock cap, and validates that the emitted
# BENCH_*.json parses as JSON. Fails (nonzero exit) if the build breaks, a
# bench exceeds its cap, a bench itself reports a regression (nonzero exit,
# e.g. steady-state allocations), or the JSON is malformed.
#
# Usage: tools/bench_smoke.sh [build-dir]
#   build-dir: an existing CMake build directory to reuse (its configured
#              build type is kept, as under CTest); when omitted, a
#              dedicated Release tree is configured at build-bench-smoke/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-bench-smoke}"
# Absolutize: the benches run from a scratch dir below.
case "$build" in /*) ;; *) build="$(pwd)/$build" ;; esac

if [[ ! -f "$build/CMakeCache.txt" ]]; then
  cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "$build" --target micro_sim micro_protocol -j"$(nproc)" \
  >/dev/null

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# The benches write BENCH_*.json into their cwd; run from a scratch dir so
# a smoke run never clobbers a real benchmark result.
run_bench() {
  local name="$1" cap="$2" json="$3"
  (cd "$out" && M2_BENCH_QUICK=1 timeout "$cap" "$build/bench/$name") || {
    status=$?
    if [[ $status -eq 124 ]]; then
      echo "bench_smoke: $name exceeded the ${cap}-second cap" >&2
    else
      echo "bench_smoke: $name failed (exit $status)" >&2
    fi
    exit 1
  }
  if ! python3 -m json.tool "$out/$json" >/dev/null; then
    echo "bench_smoke: $json is malformed" >&2
    exit 1
  fi
}

run_bench micro_sim 5 BENCH_sim.json
run_bench micro_protocol 60 BENCH_protocol.json

# The protocol bench must report the batched fast-path mix: its absence
# means the mix silently stopped running, which would unpin the batching
# perf gate.
python3 - "$out/BENCH_protocol.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("speedup_batched_fast_path",):
    assert key in doc, f"BENCH_protocol.json missing {key}"
for key in ("batched_fast_path_decided_per_sec",
            "batched_fast_path_allocs_per_decided",
            "batched_fast_path_decided"):
    assert key in doc["current"], f"BENCH_protocol.json current missing {key}"
EOF

echo "bench_smoke: OK"
