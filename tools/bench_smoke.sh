#!/usr/bin/env bash
# Smoke check for the simulator hot-path benchmark.
#
# Builds the micro_sim target in Release mode, runs it in quick mode under
# a 5-second wall-clock cap, and validates that the emitted BENCH_sim.json
# parses as JSON. Fails (nonzero exit) if the build breaks, the bench
# exceeds the cap, the bench itself reports a regression (nonzero exit,
# e.g. steady-state allocations), or the JSON is malformed.
#
# Usage: tools/bench_smoke.sh [build-dir]
#   build-dir: an existing CMake build directory to reuse (its configured
#              build type is kept, as under CTest); when omitted, a
#              dedicated Release tree is configured at build-bench-smoke/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-bench-smoke}"

if [[ ! -f "$build/CMakeCache.txt" ]]; then
  cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "$build" --target micro_sim -j"$(nproc)" >/dev/null

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# micro_sim writes BENCH_sim.json into its cwd; run from a scratch dir so
# the smoke run never clobbers a real benchmark result.
(cd "$out" && M2_BENCH_QUICK=1 timeout 5 "$build/bench/micro_sim") || {
  status=$?
  if [[ $status -eq 124 ]]; then
    echo "bench_smoke: micro_sim exceeded the 5-second cap" >&2
  else
    echo "bench_smoke: micro_sim failed (exit $status)" >&2
  fi
  exit 1
}

if ! python3 -m json.tool "$out/BENCH_sim.json" >/dev/null; then
  echo "bench_smoke: BENCH_sim.json is malformed" >&2
  exit 1
fi

echo "bench_smoke: OK"
