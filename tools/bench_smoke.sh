#!/usr/bin/env bash
# Smoke check for the self-timed hot-path benchmarks.
#
# Builds the micro_sim, micro_protocol, and micro_runtime targets in
# Release mode, runs
# each in quick mode under a wall-clock cap, and validates that the emitted
# BENCH_*.json parses as JSON. Fails (nonzero exit) if the build breaks, a
# bench exceeds its cap, a bench itself reports a regression (nonzero exit,
# e.g. steady-state allocations), or the JSON is malformed. Every bench
# runs even after an earlier one fails, and any failure fails the script.
#
# Usage: tools/bench_smoke.sh [build-dir]
#   build-dir: an existing CMake build directory to reuse (its configured
#              build type is kept, as under CTest); when omitted, a
#              dedicated Release tree is configured at build-bench-smoke/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-bench-smoke}"
# Absolutize: the benches run from a scratch dir below.
case "$build" in /*) ;; *) build="$(pwd)/$build" ;; esac

# Under CTest, CTEST_PARALLEL_LEVEL is the user's chosen parallelism;
# respect it rather than grabbing every core.
jobs="${CTEST_PARALLEL_LEVEL:-$(nproc)}"

if [[ ! -f "$build/CMakeCache.txt" ]]; then
  cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "$build" --target micro_sim micro_protocol micro_runtime \
  -j"$jobs" >/dev/null

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

failures=0

# The benches write BENCH_*.json into their cwd; run from a scratch dir so
# a smoke run never clobbers a real benchmark result. Records failures
# instead of exiting so every bench gets its run (and its diagnostics).
run_bench() {
  local name="$1" cap="$2" json="$3" status=0
  (cd "$out" && M2_BENCH_QUICK=1 timeout "$cap" "$build/bench/$name") ||
    status=$?
  if [[ $status -ne 0 ]]; then
    if [[ $status -eq 124 ]]; then
      echo "bench_smoke: $name exceeded the ${cap}-second cap" >&2
    else
      echo "bench_smoke: $name failed (exit $status)" >&2
    fi
    failures=$((failures + 1))
    return 0
  fi
  if ! python3 -m json.tool "$out/$json" >/dev/null; then
    echo "bench_smoke: $json is malformed" >&2
    failures=$((failures + 1))
  fi
}

run_bench micro_sim 5 BENCH_sim.json
run_bench micro_protocol 60 BENCH_protocol.json
run_bench micro_runtime 60 BENCH_runtime.json

if [[ $failures -ne 0 ]]; then
  echo "bench_smoke: $failures bench(es) failed" >&2
  exit 1
fi

# The protocol bench must report the batched fast-path mix: its absence
# means the mix silently stopped running, which would unpin the batching
# perf gate.
python3 - "$out/BENCH_protocol.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("schema") == "m2bench-v1", "BENCH_protocol.json schema tag"
for key in ("speedup_batched_fast_path",
            "batched_fast_path_decided_per_sec",
            "batched_fast_path_allocs_per_decided",
            "batched_fast_path_decided"):
    assert key in doc["results"], f"BENCH_protocol.json results missing {key}"
EOF

# The runtime bench must report every wire-path mix: a silently missing
# mix would unpin the runtime perf gate the same way.
python3 - "$out/BENCH_runtime.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("schema") == "m2bench-v1", "BENCH_runtime.json schema tag"
for key in ("loopback_msgs_per_sec", "loopback_allocs_per_msg",
            "loopback_bcast_msgs_per_sec", "tcp_msgs_per_sec",
            "tcp_allocs_per_msg"):
    assert key in doc["results"], f"BENCH_runtime.json results missing {key}"
EOF

echo "bench_smoke: OK"
