#!/usr/bin/env bash
# Checks that all C++ sources are clang-format clean (.clang-format at the
# repo root). Intended for CI and pre-commit use:
#
#   tools/format_check.sh          # check, nonzero exit on violations
#   tools/format_check.sh --fix    # rewrite files in place
#
# Exits 0 with a notice when clang-format is not installed, so local builds
# on minimal toolchains are not blocked; CI installs clang-format and the
# format job is authoritative there.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format_check: $CLANG_FORMAT not found; skipping (CI enforces this)"
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp')
if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format_check: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done
if [[ "$bad" -ne 0 ]]; then
  echo "format_check: run tools/format_check.sh --fix"
  exit 1
fi
echo "format_check: ${#files[@]} files clean"
