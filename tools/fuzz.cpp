// m2fuzz — seeded fault-schedule fuzzer for all four protocols.
//
// Sweeps a seed range; each seed deterministically expands into a workload,
// a network jitter stream, and a timed fault schedule (crashes, partitions,
// link failures, loss/latency/duplication spikes) applied to a simulated
// cluster while open-loop clients load every node. A safety auditor checks
// the Generalized Consensus invariants online and after the post-heal
// drain. Failing seeds are shrunk (ddmin over fault episodes) and reported
// with a replayable command line.
//
//   m2fuzz --protocol m2paxos --nodes 5 --seeds 1..200
//   m2fuzz --protocol all --seeds 1..50 --intensity 5 --json
//   m2fuzz --protocol m2paxos --seeds 17..17 --keep 2,5   # replay a shrink
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/fuzzer.hpp"
#include "stats/json.hpp"

using namespace m2;

namespace {

struct Options {
  std::vector<core::Protocol> protocols;
  int nodes = 0;  // 0 = alternate 4- and 5-node clusters across seeds
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 50;
  int intensity = 3;
  long horizon_ms = 300;
  long drain_ms = 2000;
  int jobs = 0;  // 0 = hardware_concurrency
  bool json = false;
  bool inject_bug = false;
  bool batching = false;
  bool shrink = true;
  bool verbose = false;
  std::vector<int> keep;
  bool have_keep = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [flags]\n"
      "  --protocol multipaxos|genpaxos|epaxos|m2paxos|all  (default all)\n"
      "  --nodes N         cluster size; 0 alternates 4/5   (default 0)\n"
      "  --seeds A..B      inclusive seed range             (default 1..50)\n"
      "  --intensity N     fault episodes per 100ms, 1..10  (default 3)\n"
      "  --horizon-ms MS   fault-injection window           (default 300)\n"
      "  --drain-ms MS     post-heal drain                  (default 2000)\n"
      "  --jobs N          worker threads; 0 = all cores     (default 0)\n"
      "  --keep I,J,...    replay only these fault episodes\n"
      "  --batching        enable protocol-level command batching\n"
      "  --inject-bug      enable the deliberate epoch-safety bug\n"
      "  --no-shrink       report failures without shrinking\n"
      "  --json            machine-readable output (one object per run)\n"
      "  --verbose         print every schedule, not just failing ones\n"
      "\n"
      "exit status: 0 all seeds clean, 1 violations found, 2 bad usage\n",
      argv0);
  std::exit(2);
}

bool parse_protocols(const std::string& s, std::vector<core::Protocol>& out) {
  if (s == "multipaxos") out = {core::Protocol::kMultiPaxos};
  else if (s == "genpaxos") out = {core::Protocol::kGenPaxos};
  else if (s == "epaxos") out = {core::Protocol::kEPaxos};
  else if (s == "m2paxos") out = {core::Protocol::kM2Paxos};
  else if (s == "all")
    out = {core::Protocol::kMultiPaxos, core::Protocol::kGenPaxos,
           core::Protocol::kEPaxos, core::Protocol::kM2Paxos};
  else return false;
  return true;
}

bool parse_seed_range(const std::string& s, std::uint64_t& lo,
                      std::uint64_t& hi) {
  const auto dots = s.find("..");
  if (dots == std::string::npos) {
    char* end = nullptr;
    lo = hi = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  }
  lo = std::strtoull(s.substr(0, dots).c_str(), nullptr, 10);
  hi = std::strtoull(s.substr(dots + 2).c_str(), nullptr, 10);
  return lo <= hi;
}

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto piece = s.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
    if (!piece.empty()) out.push_back(std::atoi(piece.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options opt;
  parse_protocols("all", opt.protocols);
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--protocol") {
      if (!parse_protocols(need_value(i), opt.protocols)) usage(argv[0]);
    } else if (flag == "--nodes") {
      opt.nodes = std::atoi(need_value(i));
    } else if (flag == "--seeds") {
      if (!parse_seed_range(need_value(i), opt.seed_lo, opt.seed_hi))
        usage(argv[0]);
    } else if (flag == "--intensity") {
      opt.intensity = std::atoi(need_value(i));
    } else if (flag == "--horizon-ms") {
      opt.horizon_ms = std::atol(need_value(i));
    } else if (flag == "--drain-ms") {
      opt.drain_ms = std::atol(need_value(i));
    } else if (flag == "--jobs") {
      opt.jobs = std::atoi(need_value(i));
    } else if (flag == "--keep") {
      opt.keep = parse_int_list(need_value(i));
      opt.have_keep = true;
    } else if (flag == "--batching") {
      opt.batching = true;
    } else if (flag == "--inject-bug") {
      opt.inject_bug = true;
    } else if (flag == "--no-shrink") {
      opt.shrink = false;
    } else if (flag == "--json") {
      opt.json = true;
    } else if (flag == "--verbose") {
      opt.verbose = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.nodes < 0 || opt.nodes == 1 || opt.nodes == 2 ||
      opt.intensity < 1 || opt.intensity > 10 || opt.horizon_ms < 1 ||
      opt.drain_ms < 0 || opt.jobs < 0)
    usage(argv[0]);
  return opt;
}

int nodes_for_seed(const Options& opt, std::uint64_t seed) {
  if (opt.nodes != 0) return opt.nodes;
  return seed % 2 == 0 ? 4 : 5;
}

std::string episode_list(const std::vector<int>& episodes) {
  std::string out;
  for (const int e : episodes) {
    if (!out.empty()) out += ',';
    out += std::to_string(e);
  }
  return out;
}

/// Protocol name in the exact spelling the --protocol flag accepts (the
/// display names from core::to_string are capitalized).
std::string flag_name(core::Protocol protocol) {
  std::string name = core::to_string(protocol);
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return name;
}

std::string repro_command(const char* argv0, core::Protocol protocol,
                          int nodes, std::uint64_t seed, const Options& opt,
                          const std::vector<int>& keep) {
  std::string cmd = argv0;
  cmd += " --protocol " + flag_name(protocol);
  cmd += " --nodes " + std::to_string(nodes);
  cmd += " --seeds " + std::to_string(seed) + ".." + std::to_string(seed);
  cmd += " --intensity " + std::to_string(opt.intensity);
  if (opt.horizon_ms != 300)
    cmd += " --horizon-ms " + std::to_string(opt.horizon_ms);
  if (opt.batching) cmd += " --batching";
  if (opt.inject_bug) cmd += " --inject-bug";
  if (!keep.empty()) cmd += " --keep " + episode_list(keep);
  return cmd;
}

// NDJSON via the shared stats::Json writer: one compact object per run,
// with the same escaping and number formatting as every BENCH_*.json.
void print_json_run(core::Protocol protocol, int nodes, std::uint64_t seed,
                    const fuzz::FuzzResult& result,
                    const std::vector<int>* shrunk,
                    const std::string& repro) {
  stats::Json doc = stats::Json::object();
  doc.set("protocol", core::to_string(protocol));
  doc.set("nodes", nodes);
  doc.set("seed", seed);
  doc.set("ok", result.ok);
  doc.set("proposals", result.proposals);
  doc.set("committed", result.committed);
  doc.set("decisions", result.decisions);
  doc.set("deliveries", result.deliveries);
  doc.set("crashes", result.nodes_crashed);
  stats::Json violations = stats::Json::array();
  for (const std::string& v : result.violations) violations.push(v);
  doc.set("violations", std::move(violations));
  if (shrunk != nullptr) {
    stats::Json episodes = stats::Json::array();
    for (const int e : *shrunk) episodes.push(e);
    doc.set("shrunk_episodes", std::move(episodes));
  }
  if (!repro.empty()) doc.set("repro", repro);
  std::printf("%s\n", doc.dump(0).c_str());
}

}  // namespace

/// One (protocol, seed) sweep entry plus the slot its outcome lands in.
/// Cases are executed by a worker pool but reported strictly in sweep
/// order (protocol, then ascending seed), so output is identical to the
/// old sequential loop regardless of thread scheduling.
struct SweepCase {
  fuzz::FuzzCase fuzz_case;
  fuzz::FuzzResult result;
  std::vector<int> shrunk;
  bool have_shrunk = false;
};

void run_sweep(std::vector<SweepCase>& cases, const Options& opt) {
  // run_case (and the shrinker, which only replays cases) builds a private
  // simulator, cluster, and RNG per invocation and the library keeps no
  // mutable globals, so cases are embarrassingly parallel.
  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t jobs = opt.jobs != 0 ? static_cast<std::size_t>(opt.jobs)
                                   : (hw != 0 ? hw : 1);
  jobs = std::min(jobs, cases.size());

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cases.size()) return;
      SweepCase& sc = cases[i];
      sc.result = fuzz::run_case(sc.fuzz_case);
      if (!sc.result.ok && opt.shrink && !opt.have_keep) {
        sc.shrunk = fuzz::shrink_schedule(sc.fuzz_case, sc.result);
        sc.have_shrunk = true;
      }
    }
  };

  if (jobs <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  std::vector<SweepCase> cases;
  for (const core::Protocol protocol : opt.protocols) {
    for (std::uint64_t seed = opt.seed_lo; seed <= opt.seed_hi; ++seed) {
      SweepCase sc;
      sc.fuzz_case.protocol = protocol;
      sc.fuzz_case.n_nodes = nodes_for_seed(opt, seed);
      sc.fuzz_case.seed = seed;
      sc.fuzz_case.intensity = opt.intensity;
      sc.fuzz_case.horizon = opt.horizon_ms * sim::kMillisecond;
      sc.fuzz_case.drain = opt.drain_ms * sim::kMillisecond;
      sc.fuzz_case.inject_bug = opt.inject_bug;
      sc.fuzz_case.batching = opt.batching;
      if (opt.have_keep) {
        sc.fuzz_case.keep_episodes = opt.keep;
        if (sc.fuzz_case.keep_episodes.empty())
          sc.fuzz_case.keep_episodes.push_back(-2);  // --keep "" = no faults
      }
      cases.push_back(std::move(sc));
    }
  }

  run_sweep(cases, opt);

  std::uint64_t runs = 0, failures = 0;
  for (const SweepCase& sc : cases) {
    const core::Protocol protocol = sc.fuzz_case.protocol;
    const std::uint64_t seed = sc.fuzz_case.seed;
    const fuzz::FuzzResult& result = sc.result;
    ++runs;

    if (opt.verbose && !opt.json) {
      std::printf("# %s nodes=%d seed=%llu: %s (%llu committed)\n",
                  core::to_string(protocol).c_str(), sc.fuzz_case.n_nodes,
                  static_cast<unsigned long long>(seed),
                  result.ok ? "ok" : "FAIL",
                  static_cast<unsigned long long>(result.committed));
      std::fputs(fuzz::to_string(result.schedule).c_str(), stdout);
    }

    if (result.ok) {
      if (opt.json && opt.verbose)
        print_json_run(protocol, sc.fuzz_case.n_nodes, seed, result, nullptr,
                       "");
      continue;
    }
    ++failures;

    const std::string repro =
        repro_command(argv[0], protocol, sc.fuzz_case.n_nodes, seed, opt,
                      sc.have_shrunk ? sc.shrunk : sc.fuzz_case.keep_episodes);

    if (opt.json) {
      print_json_run(protocol, sc.fuzz_case.n_nodes, seed, result,
                     sc.have_shrunk ? &sc.shrunk : nullptr, repro);
    } else {
      std::printf("FAIL %s nodes=%d seed=%llu intensity=%d\n",
                  core::to_string(protocol).c_str(), sc.fuzz_case.n_nodes,
                  static_cast<unsigned long long>(seed), opt.intensity);
      for (const auto& v : result.violations)
        std::printf("  violation: %s\n", v.c_str());
      if (sc.have_shrunk)
        std::printf("  shrunk to %zu episode(s): %s\n", sc.shrunk.size(),
                    episode_list(sc.shrunk).c_str());
      std::fputs(fuzz::to_string(result.schedule).c_str(), stdout);
      std::printf("  repro: %s\n", repro.c_str());
    }
  }

  if (opt.json) {
    stats::Json summary = stats::Json::object();
    summary.set("runs", runs);
    summary.set("failures", failures);
    std::printf("%s\n", summary.dump(0).c_str());
  } else {
    std::printf("%llu run(s), %llu failure(s)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(failures));
  }
  return failures == 0 ? 0 : 1;
}
