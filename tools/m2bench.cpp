// m2bench — command-line experiment runner.
//
// Runs one simulated-cluster experiment with everything configurable from
// flags and prints a single result row (or CSV with --csv for scripting).
//
//   m2bench --protocol m2paxos --nodes 11 --locality 90 --clients 64
//   m2bench --protocol epaxos --tpcc --nodes 5 --remote 15 --csv
//   m2bench --protocol multipaxos --nodes 49 --no-batching --measure-ms 200
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "harness/experiment.hpp"
#include "stats/export.hpp"
#include "workload/synthetic.hpp"
#include "workload/tpcc.hpp"

using namespace m2;

namespace {

struct Options {
  core::Protocol protocol = core::Protocol::kM2Paxos;
  int nodes = 5;
  int cores = 16;
  bool tpcc = false;
  double locality = 1.0;
  double complex_fraction = 0.0;
  double zipf_theta = 0.0;
  double remote_warehouse = 0.0;
  std::uint64_t objects_per_node = 1000;
  int clients = 64;
  int inflight = 64;
  long think_us = 0;
  long warmup_ms = 30;
  long measure_ms = 80;
  std::uint64_t seed = 1;
  bool batching = true;
  double loss = 0.0;
  bool csv = false;
  bool json = false;
  bool metrics = true;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [flags]\n"
      "  --protocol multipaxos|genpaxos|epaxos|m2paxos   (default m2paxos)\n"
      "  --nodes N            cluster size            (default 5)\n"
      "  --cores N            cores per node          (default 16)\n"
      "  --tpcc               TPC-C workload instead of synthetic\n"
      "  --remote PCT         TPC-C: %% remote home warehouse\n"
      "  --locality PCT       synthetic: %% local commands (default 100)\n"
      "  --complex PCT        synthetic: %% complex commands\n"
      "  --zipf THETA         synthetic: Zipfian skew in [0,1)\n"
      "  --objects N          synthetic: objects per node (default 1000)\n"
      "  --clients N          client threads per node  (default 64)\n"
      "  --inflight N         in-flight cap per node   (default 64)\n"
      "  --think-us US        client think time\n"
      "  --warmup-ms MS       warm-up window           (default 30)\n"
      "  --measure-ms MS      measurement window       (default 80)\n"
      "  --seed S             RNG seed                 (default 1)\n"
      "  --loss P             message drop probability\n"
      "  --no-batching        disable network batching\n"
      "  --no-metrics         disable the metrics registries (overhead A/B)\n"
      "  --csv                machine-readable output\n"
      "  --json               m2bench-v1 JSON document on stdout\n",
      argv0);
  std::exit(2);
}

bool parse_protocol(const std::string& s, core::Protocol& out) {
  if (s == "multipaxos") out = core::Protocol::kMultiPaxos;
  else if (s == "genpaxos") out = core::Protocol::kGenPaxos;
  else if (s == "epaxos") out = core::Protocol::kEPaxos;
  else if (s == "m2paxos") out = core::Protocol::kM2Paxos;
  else return false;
  return true;
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--protocol") {
      if (!parse_protocol(need_value(i), opt.protocol)) usage(argv[0]);
    } else if (flag == "--nodes") {
      opt.nodes = std::atoi(need_value(i));
    } else if (flag == "--cores") {
      opt.cores = std::atoi(need_value(i));
    } else if (flag == "--tpcc") {
      opt.tpcc = true;
    } else if (flag == "--remote") {
      opt.remote_warehouse = std::atof(need_value(i)) / 100.0;
    } else if (flag == "--locality") {
      opt.locality = std::atof(need_value(i)) / 100.0;
    } else if (flag == "--complex") {
      opt.complex_fraction = std::atof(need_value(i)) / 100.0;
    } else if (flag == "--zipf") {
      opt.zipf_theta = std::atof(need_value(i));
    } else if (flag == "--objects") {
      opt.objects_per_node = std::strtoull(need_value(i), nullptr, 10);
    } else if (flag == "--clients") {
      opt.clients = std::atoi(need_value(i));
    } else if (flag == "--inflight") {
      opt.inflight = std::atoi(need_value(i));
    } else if (flag == "--think-us") {
      opt.think_us = std::atol(need_value(i));
    } else if (flag == "--warmup-ms") {
      opt.warmup_ms = std::atol(need_value(i));
    } else if (flag == "--measure-ms") {
      opt.measure_ms = std::atol(need_value(i));
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (flag == "--loss") {
      opt.loss = std::atof(need_value(i));
    } else if (flag == "--no-batching") {
      opt.batching = false;
    } else if (flag == "--no-metrics") {
      opt.metrics = false;
    } else if (flag == "--csv") {
      opt.csv = true;
    } else if (flag == "--json") {
      opt.json = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.nodes < 1 || opt.clients < 0 || opt.inflight < 1) usage(argv[0]);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  harness::ExperimentConfig cfg;
  cfg.protocol = opt.protocol;
  cfg.cluster.n_nodes = opt.nodes;
  cfg.cluster.cores_per_node = opt.cores;
  cfg.network.batching = opt.batching;
  cfg.network.loss_probability = opt.loss;
  cfg.load.clients_per_node = opt.clients;
  cfg.load.max_inflight_per_node = opt.inflight;
  cfg.load.think_time = opt.think_us * sim::kMicrosecond;
  cfg.warmup = opt.warmup_ms * sim::kMillisecond;
  cfg.measure = opt.measure_ms * sim::kMillisecond;
  cfg.seed = opt.seed;
  cfg.cluster.metrics.enabled = opt.metrics;

  std::unique_ptr<wl::Workload> workload;
  if (opt.tpcc) {
    workload = std::make_unique<wl::TpccWorkload>(
        wl::TpccConfig{opt.nodes, 10, opt.remote_warehouse, opt.seed});
  } else {
    wl::SyntheticConfig wcfg{opt.nodes,    opt.objects_per_node,
                             opt.locality, opt.complex_fraction,
                             16,           opt.seed};
    wcfg.zipf_theta = opt.zipf_theta;
    workload = std::make_unique<wl::SyntheticWorkload>(wcfg);
  }

  const auto r = harness::run_experiment(cfg, *workload);

  const double med_us = static_cast<double>(r.commit_latency.median()) / 1e3;
  const double p99_us =
      static_cast<double>(r.commit_latency.quantile(0.99)) / 1e3;
  if (opt.json) {
    stats::Json results = stats::Json::object();
    results.set("throughput_per_sec", r.committed_per_sec);
    results.set("latency_median_us", med_us);
    results.set("latency_p99_us", p99_us);
    results.set("bytes_per_command", r.bytes_per_command);
    results.set("msgs_per_command",
                r.committed > 0
                    ? static_cast<double>(r.traffic.messages_sent) /
                          static_cast<double>(r.committed)
                    : 0.0);
    results.set("cpu_utilization", r.avg_cpu_utilization);
    results.set("committed", r.committed);
    results.set("proposals", r.proposals);
    results.set("skipped", r.skipped);

    stats::Json doc = stats::make_bench_doc("m2bench", false);
    doc.set("protocol", core::to_string(opt.protocol));
    doc.set("nodes", opt.nodes);
    doc.set("workload", opt.tpcc ? "tpcc" : "synthetic");
    doc.set("seed", opt.seed);
    doc.set("results", std::move(results));
    doc.set("metrics", stats::export_registry(r.metrics));
    std::fputs(doc.dump(2).c_str(), stdout);
  } else if (opt.csv) {
    std::printf(
        "protocol,nodes,throughput_cps,median_us,p99_us,bytes_per_cmd,"
        "msgs_per_cmd,cpu_util\n");
    std::printf("%s,%d,%.0f,%.1f,%.1f,%.0f,%.2f,%.3f\n",
                core::to_string(opt.protocol).c_str(), opt.nodes,
                r.committed_per_sec, med_us, p99_us, r.bytes_per_command,
                r.committed > 0 ? static_cast<double>(r.traffic.messages_sent) /
                                      static_cast<double>(r.committed)
                                : 0.0,
                r.avg_cpu_utilization);
  } else {
    std::printf("%s on %d nodes (%s)\n",
                core::to_string(opt.protocol).c_str(), opt.nodes,
                opt.tpcc ? "TPC-C" : "synthetic");
    std::printf("  throughput  : %.0f cmds/s\n", r.committed_per_sec);
    std::printf("  latency     : median %.0f us, p99 %.0f us\n", med_us, p99_us);
    std::printf("  network     : %.0f bytes/cmd, %.1f msgs/cmd\n",
                r.bytes_per_command,
                r.committed > 0 ? static_cast<double>(r.traffic.messages_sent) /
                                      static_cast<double>(r.committed)
                                : 0.0);
    std::printf("  cpu         : %.1f%% average utilization\n",
                r.avg_cpu_utilization * 100.0);
    std::printf("  committed   : %llu commands (%llu skipped at cap)\n",
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.skipped));
  }
  return 0;
}
