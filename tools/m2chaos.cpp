// m2chaos — seeded chaos soak harness for the real-clock runtime.
//
// The runtime sibling of m2fuzz: each seed expands into a workload and a
// timed fault schedule (crashes, partitions, link failures, loss/latency/
// duplication spikes, plus the runtime-only connection resets, wire
// corruption, and slow-peer throttles) applied to a real threaded cluster —
// in-process loopback or actual TCP sockets on localhost — while an
// open-loop driver proposes commands. Every protocol event feeds the same
// SafetyAuditor the simulator fuzzer uses; failing seeds are shrunk (ddmin
// over fault episodes) and reported with a replayable command line.
//
//   m2chaos --protocol m2paxos --nodes 5 --seeds 1..50
//   m2chaos --protocol all --transport both --seeds 1..20 --json
//   m2chaos --protocol m2paxos --seeds 17..17 --keep 2,5   # replay a shrink
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "runtime/chaos.hpp"
#include "stats/json.hpp"

using namespace m2;

namespace {

struct Options {
  std::vector<core::Protocol> protocols;
  bool loopback = true;
  bool tcp = false;
  int nodes = 0;  // 0 = alternate 4- and 5-node clusters across seeds
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 20;
  int intensity = 3;
  long horizon_ms = 400;
  long drain_ms = 2000;
  int commands = 150;
  int jobs = 0;  // 0 = a conservative auto pick (each run spawns threads)
  bool json = false;
  bool inject_bug = false;
  bool shrink = true;
  bool verbose = false;
  std::vector<int> keep;
  bool have_keep = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [flags]\n"
      "  --protocol multipaxos|genpaxos|epaxos|m2paxos|all\n"
      "                    (default m2paxos,multipaxos)\n"
      "  --transport loopback|tcp|both                     (default loopback)\n"
      "  --nodes N         cluster size; 0 alternates 4/5  (default 0)\n"
      "  --seeds A..B      inclusive seed range            (default 1..20)\n"
      "  --intensity N     fault episodes per 100ms, 1..10 (default 3)\n"
      "  --horizon-ms MS   fault-injection window          (default 400)\n"
      "  --drain-ms MS     post-heal drain                 (default 2000)\n"
      "  --commands N      proposals per node per run      (default 150)\n"
      "  --jobs N          concurrent runs; 0 = auto       (default 0)\n"
      "  --keep I,J,...    replay only these fault episodes\n"
      "  --inject-bug      enable the deliberate epoch-safety bug\n"
      "  --no-shrink       report failures without shrinking\n"
      "  --json            machine-readable output (one object per run)\n"
      "  --verbose         print every schedule, not just failing ones\n"
      "\n"
      "exit status: 0 all seeds clean, 1 violations found, 2 bad usage\n",
      argv0);
  std::exit(2);
}

bool parse_protocols(const std::string& s, std::vector<core::Protocol>& out) {
  if (s == "multipaxos") out = {core::Protocol::kMultiPaxos};
  else if (s == "genpaxos") out = {core::Protocol::kGenPaxos};
  else if (s == "epaxos") out = {core::Protocol::kEPaxos};
  else if (s == "m2paxos") out = {core::Protocol::kM2Paxos};
  else if (s == "all")
    out = {core::Protocol::kMultiPaxos, core::Protocol::kGenPaxos,
           core::Protocol::kEPaxos, core::Protocol::kM2Paxos};
  else return false;
  return true;
}

bool parse_transport(const std::string& s, Options& opt) {
  if (s == "loopback") { opt.loopback = true; opt.tcp = false; }
  else if (s == "tcp") { opt.loopback = false; opt.tcp = true; }
  else if (s == "both") { opt.loopback = true; opt.tcp = true; }
  else return false;
  return true;
}

bool parse_seed_range(const std::string& s, std::uint64_t& lo,
                      std::uint64_t& hi) {
  const auto dots = s.find("..");
  if (dots == std::string::npos) {
    char* end = nullptr;
    lo = hi = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  }
  lo = std::strtoull(s.substr(0, dots).c_str(), nullptr, 10);
  hi = std::strtoull(s.substr(dots + 2).c_str(), nullptr, 10);
  return lo <= hi;
}

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto piece = s.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
    if (!piece.empty()) out.push_back(std::atoi(piece.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options opt;
  opt.protocols = {core::Protocol::kM2Paxos, core::Protocol::kMultiPaxos};
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--protocol") {
      if (!parse_protocols(need_value(i), opt.protocols)) usage(argv[0]);
    } else if (flag == "--transport") {
      if (!parse_transport(need_value(i), opt)) usage(argv[0]);
    } else if (flag == "--nodes") {
      opt.nodes = std::atoi(need_value(i));
    } else if (flag == "--seeds") {
      if (!parse_seed_range(need_value(i), opt.seed_lo, opt.seed_hi))
        usage(argv[0]);
    } else if (flag == "--intensity") {
      opt.intensity = std::atoi(need_value(i));
    } else if (flag == "--horizon-ms") {
      opt.horizon_ms = std::atol(need_value(i));
    } else if (flag == "--drain-ms") {
      opt.drain_ms = std::atol(need_value(i));
    } else if (flag == "--commands") {
      opt.commands = std::atoi(need_value(i));
    } else if (flag == "--jobs") {
      opt.jobs = std::atoi(need_value(i));
    } else if (flag == "--keep") {
      opt.keep = parse_int_list(need_value(i));
      opt.have_keep = true;
    } else if (flag == "--inject-bug") {
      opt.inject_bug = true;
    } else if (flag == "--no-shrink") {
      opt.shrink = false;
    } else if (flag == "--json") {
      opt.json = true;
    } else if (flag == "--verbose") {
      opt.verbose = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.nodes < 0 || opt.nodes == 1 || opt.nodes == 2 ||
      opt.intensity < 1 || opt.intensity > 10 || opt.horizon_ms < 1 ||
      opt.drain_ms < 0 || opt.commands < 1 || opt.jobs < 0)
    usage(argv[0]);
  return opt;
}

int nodes_for_seed(const Options& opt, std::uint64_t seed) {
  if (opt.nodes != 0) return opt.nodes;
  return seed % 2 == 0 ? 4 : 5;
}

std::string episode_list(const std::vector<int>& episodes) {
  std::string out;
  for (const int e : episodes) {
    if (!out.empty()) out += ',';
    out += std::to_string(e);
  }
  return out;
}

/// Protocol name in the exact spelling the --protocol flag accepts (the
/// display names from core::to_string are capitalized).
std::string flag_name(core::Protocol protocol) {
  std::string name = core::to_string(protocol);
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return name;
}

std::string repro_command(const char* argv0, const runtime::ChaosCase& cc,
                          const Options& opt, const std::vector<int>& keep) {
  std::string cmd = argv0;
  cmd += " --protocol " + flag_name(cc.protocol);
  cmd += std::string(" --transport ") + (cc.tcp ? "tcp" : "loopback");
  cmd += " --nodes " + std::to_string(cc.n_nodes);
  cmd += " --seeds " + std::to_string(cc.seed) + ".." +
         std::to_string(cc.seed);
  cmd += " --intensity " + std::to_string(cc.intensity);
  if (opt.horizon_ms != 400)
    cmd += " --horizon-ms " + std::to_string(opt.horizon_ms);
  if (opt.inject_bug) cmd += " --inject-bug";
  if (!keep.empty()) cmd += " --keep " + episode_list(keep);
  return cmd;
}

// NDJSON via the shared stats::Json writer: one compact object per run,
// with the same escaping and number formatting as every BENCH_*.json.
void print_json_run(const runtime::ChaosCase& cc,
                    const runtime::ChaosResult& result,
                    const std::vector<int>* shrunk, const std::string& repro) {
  stats::Json doc = stats::Json::object();
  doc.set("protocol", core::to_string(cc.protocol));
  doc.set("transport", cc.tcp ? "tcp" : "loopback");
  doc.set("nodes", cc.n_nodes);
  doc.set("seed", cc.seed);
  doc.set("ok", result.ok);
  doc.set("proposals", result.proposals);
  doc.set("committed", result.committed);
  doc.set("decisions", result.decisions);
  doc.set("deliveries", result.deliveries);
  doc.set("crashes", result.nodes_crashed);
  doc.set("chaos_injected", result.chaos_injected);
  doc.set("tx_dropped", result.tx_dropped);
  doc.set("lossy", result.lossy);
  stats::Json violations = stats::Json::array();
  for (const std::string& v : result.violations) violations.push(v);
  doc.set("violations", std::move(violations));
  if (shrunk != nullptr) {
    stats::Json episodes = stats::Json::array();
    for (const int e : *shrunk) episodes.push(e);
    doc.set("shrunk_episodes", std::move(episodes));
  }
  if (!repro.empty()) doc.set("repro", repro);
  std::printf("%s\n", doc.dump(0).c_str());
}

/// One sweep entry plus the slot its outcome lands in. Cases run on a
/// worker pool but report strictly in sweep order.
struct SweepCase {
  runtime::ChaosCase chaos_case;
  runtime::ChaosResult result;
  std::vector<int> shrunk;
  bool have_shrunk = false;
};

void run_sweep(std::vector<SweepCase>& cases, const Options& opt) {
  // Unlike m2fuzz, every case spawns n_nodes node threads plus transport
  // threads and burns real wall time — so the auto job count is deliberately
  // conservative (cases are still independent; nothing shares state).
  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t jobs = opt.jobs != 0
                         ? static_cast<std::size_t>(opt.jobs)
                         : std::max<std::size_t>(1, (hw != 0 ? hw : 8) / 8);
  jobs = std::min(jobs, cases.size());

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cases.size()) return;
      SweepCase& sc = cases[i];
      sc.result = runtime::run_chaos_case(sc.chaos_case);
      if (!sc.result.ok && opt.shrink && !opt.have_keep) {
        sc.shrunk = runtime::shrink_chaos_schedule(sc.chaos_case, sc.result);
        sc.have_shrunk = true;
      }
    }
  };

  if (jobs <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  std::vector<SweepCase> cases;
  std::vector<bool> transports;
  if (opt.loopback) transports.push_back(false);
  if (opt.tcp) transports.push_back(true);
  for (const core::Protocol protocol : opt.protocols) {
    for (const bool tcp : transports) {
      for (std::uint64_t seed = opt.seed_lo; seed <= opt.seed_hi; ++seed) {
        SweepCase sc;
        sc.chaos_case.protocol = protocol;
        sc.chaos_case.tcp = tcp;
        sc.chaos_case.n_nodes = nodes_for_seed(opt, seed);
        sc.chaos_case.seed = seed;
        sc.chaos_case.intensity = opt.intensity;
        sc.chaos_case.horizon = opt.horizon_ms * core::kMillisecond;
        sc.chaos_case.drain = opt.drain_ms * core::kMillisecond;
        sc.chaos_case.commands_per_node = opt.commands;
        sc.chaos_case.inject_bug = opt.inject_bug;
        if (opt.have_keep) {
          sc.chaos_case.keep_episodes = opt.keep;
          if (sc.chaos_case.keep_episodes.empty())
            sc.chaos_case.keep_episodes.push_back(-2);  // --keep "" = calm
        }
        cases.push_back(std::move(sc));
      }
    }
  }

  run_sweep(cases, opt);

  std::uint64_t runs = 0, failures = 0;
  for (const SweepCase& sc : cases) {
    const runtime::ChaosCase& cc = sc.chaos_case;
    const runtime::ChaosResult& result = sc.result;
    ++runs;

    if (opt.verbose && !opt.json) {
      std::printf("# %s %s nodes=%d seed=%llu: %s (%llu committed, "
                  "%llu chaos faults)\n",
                  core::to_string(cc.protocol).c_str(),
                  cc.tcp ? "tcp" : "loopback", cc.n_nodes,
                  static_cast<unsigned long long>(cc.seed),
                  result.ok ? "ok" : "FAIL",
                  static_cast<unsigned long long>(result.committed),
                  static_cast<unsigned long long>(result.chaos_injected));
      std::fputs(fuzz::to_string(result.schedule).c_str(), stdout);
    }

    if (result.ok) {
      if (opt.json && opt.verbose)
        print_json_run(cc, result, nullptr, "");
      continue;
    }
    ++failures;

    const std::string repro = repro_command(
        argv[0], cc, opt, sc.have_shrunk ? sc.shrunk : cc.keep_episodes);

    if (opt.json) {
      print_json_run(cc, result, sc.have_shrunk ? &sc.shrunk : nullptr,
                     repro);
    } else {
      std::printf("FAIL %s %s nodes=%d seed=%llu intensity=%d\n",
                  core::to_string(cc.protocol).c_str(),
                  cc.tcp ? "tcp" : "loopback", cc.n_nodes,
                  static_cast<unsigned long long>(cc.seed), opt.intensity);
      for (const auto& v : result.violations)
        std::printf("  violation: %s\n", v.c_str());
      if (sc.have_shrunk)
        std::printf("  shrunk to %zu episode(s): %s\n", sc.shrunk.size(),
                    episode_list(sc.shrunk).c_str());
      std::fputs(fuzz::to_string(result.schedule).c_str(), stdout);
      std::printf("  repro: %s\n", repro.c_str());
    }
  }

  if (opt.json) {
    stats::Json summary = stats::Json::object();
    summary.set("runs", runs);
    summary.set("failures", failures);
    std::printf("%s\n", summary.dump(0).c_str());
  } else {
    std::printf("%llu run(s), %llu failure(s)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(failures));
  }
  return failures == 0 ? 0 : 1;
}
