// m2node — one consensus node (or a whole cluster) on the threaded
// real-transport runtime.
//
// Serve mode: run this process' share of a TCP cluster described by a JSON
// spec (see runtime/spec.hpp). Every participating process gets the same
// spec and serves its own node id(s):
//
//   m2node --spec cluster.json --node 0 [--load 64] [--duration-ms 5000]
//
// Loopback bench mode: all nodes in-process over the loopback transport,
// an open-loop driver keeping --inflight proposals outstanding per node on
// owned objects (the M²Paxos fast path), exporting an m2bench-v1 JSON
// document. The CI throughput gate runs this with --min-throughput.
//
//   m2node --loopback --protocol m2paxos --nodes 5 --measure-ms 1000
//          --json BENCH_runtime.json --min-throughput 50000
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/spec.hpp"
#include "runtime/tcp_transport.hpp"
#include "stats/export.hpp"

using namespace m2;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  // Common.
  std::string spec_path;
  std::string json_path;
  std::uint64_t seed = 1;
  bool audit = false;

  // Serve mode.
  std::vector<NodeId> local_nodes;
  int load_inflight = 0;     // 0 = passive replica
  long duration_ms = 0;      // 0 = until SIGINT/SIGTERM

  // Loopback bench mode.
  bool loopback = false;
  core::Protocol protocol = core::Protocol::kM2Paxos;
  int nodes = 5;
  std::uint64_t objects = 1024;
  int inflight = 64;
  long warmup_ms = 200;
  long measure_ms = 1000;
  bool batching = true;
  double min_throughput = 0;
};

void usage() {
  std::fprintf(
      stderr,
      "m2node — threaded real-transport consensus node\n\n"
      "Serve a TCP cluster node:\n"
      "  m2node --spec FILE --node I [--node J ...]\n"
      "    --load N         keep N self-proposals in flight per local node\n"
      "    --duration-ms MS exit after MS (default: until SIGINT)\n\n"
      "All-local loopback benchmark:\n"
      "  m2node --loopback [--protocol m2paxos] [--nodes 5]\n"
      "    --objects N        owned objects per node    (default 1024)\n"
      "    --inflight N       proposals in flight/node  (default 64)\n"
      "    --warmup-ms MS     warm-up window            (default 200)\n"
      "    --measure-ms MS    measurement window        (default 1000)\n"
      "    --no-batching      disable command batching\n"
      "    --min-throughput X fail (exit 1) below X committed/sec\n"
      "    --audit            collect C-structs and audit consistency\n\n"
      "Common:\n"
      "    --seed S           run seed (default 1)\n"
      "    --json FILE        write an m2bench-v1 document\n");
}

bool parse_args(int argc, char** argv, Options* opt) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--spec") {
      if ((v = need(i)) == nullptr) return false;
      opt->spec_path = v;
    } else if (flag == "--node") {
      if ((v = need(i)) == nullptr) return false;
      opt->local_nodes.push_back(static_cast<NodeId>(std::atoi(v)));
    } else if (flag == "--load") {
      if ((v = need(i)) == nullptr) return false;
      opt->load_inflight = std::atoi(v);
    } else if (flag == "--duration-ms") {
      if ((v = need(i)) == nullptr) return false;
      opt->duration_ms = std::atol(v);
    } else if (flag == "--loopback") {
      opt->loopback = true;
    } else if (flag == "--protocol") {
      if ((v = need(i)) == nullptr) return false;
      if (!runtime::parse_protocol(v, &opt->protocol)) {
        std::fprintf(stderr, "unknown protocol %s\n", v);
        return false;
      }
    } else if (flag == "--nodes") {
      if ((v = need(i)) == nullptr) return false;
      opt->nodes = std::atoi(v);
    } else if (flag == "--objects") {
      if ((v = need(i)) == nullptr) return false;
      opt->objects = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--inflight") {
      if ((v = need(i)) == nullptr) return false;
      opt->inflight = std::atoi(v);
    } else if (flag == "--warmup-ms") {
      if ((v = need(i)) == nullptr) return false;
      opt->warmup_ms = std::atol(v);
    } else if (flag == "--measure-ms") {
      if ((v = need(i)) == nullptr) return false;
      opt->measure_ms = std::atol(v);
    } else if (flag == "--no-batching") {
      opt->batching = false;
    } else if (flag == "--min-throughput") {
      if ((v = need(i)) == nullptr) return false;
      opt->min_throughput = std::atof(v);
    } else if (flag == "--audit") {
      opt->audit = true;
    } else if (flag == "--seed") {
      if ((v = need(i)) == nullptr) return false;
      opt->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag == "--json") {
      if ((v = need(i)) == nullptr) return false;
      opt->json_path = v;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (opt->loopback == opt->spec_path.empty()) return true;
  std::fprintf(stderr, "pick one mode: --spec FILE (serve) or --loopback\n");
  return false;
}

/// Open-loop driver against `rt`: keeps `inflight` proposals outstanding
/// per driven node, each touching one object the node owns (fast path).
/// Runs until `deadline` (runtime-clock ns) or g_stop. Returns proposals.
std::uint64_t drive(runtime::Runtime& rt, const std::vector<NodeId>& nodes,
                    std::uint64_t objects_per_node, int inflight,
                    core::Time deadline, std::uint64_t* proposed,
                    std::uint64_t committed_base) {
  const std::uint64_t cap =
      static_cast<std::uint64_t>(inflight) * nodes.size();
  std::uint64_t round = 0;
  while (!g_stop && rt.clock().now() < deadline) {
    const std::uint64_t done = committed_base + rt.committed();
    std::uint64_t outstanding = *proposed - done;
    bool progressed = false;
    while (outstanding < cap && !g_stop) {
      for (const NodeId n : nodes) {
        const core::ObjectId object =
            static_cast<core::ObjectId>(n) * objects_per_node +
            round % objects_per_node;
        core::Command c(core::CommandId::make(n, ++*proposed), {object});
        rt.propose(n, std::move(c));
        progressed = true;
      }
      ++round;
      outstanding = *proposed - (committed_base + rt.committed());
    }
    if (!progressed)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return *proposed;
}

stats::Json bench_results(const runtime::Runtime& rt, double seconds,
                          std::uint64_t committed, std::uint64_t proposed) {
  const stats::Histogram lat = rt.commit_latency();
  const auto& tc = rt.transport_counters();
  stats::Json results = stats::Json::object();
  results.set("throughput_per_sec",
              seconds > 0 ? static_cast<double>(committed) / seconds : 0.0);
  results.set("latency_median_us",
              static_cast<double>(lat.median()) / 1000.0);
  results.set("latency_p99_us",
              static_cast<double>(lat.quantile(0.99)) / 1000.0);
  results.set("committed", committed);
  results.set("proposals", proposed);
  results.set("messages_sent", tc.messages_sent.load());
  results.set("bytes_sent", tc.bytes_sent.load());
  results.set("bytes_per_command",
              committed > 0 ? static_cast<double>(tc.bytes_sent.load()) /
                                  static_cast<double>(committed)
                            : 0.0);
  results.set("decode_failures", tc.decode_failures.load());
  return results;
}

int run_loopback_bench(const Options& opt) {
  runtime::RuntimeConfig cfg;
  cfg.protocol = opt.protocol;
  cfg.cluster.n_nodes = opt.nodes;
  cfg.cluster.batching.enabled = opt.batching;
  cfg.seed = opt.seed;
  cfg.audit = opt.audit;
  cfg.owner_map = core::OwnerMap::divide(opt.objects);

  runtime::Runtime rt(cfg);
  std::string error;
  if (!rt.start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }

  std::vector<NodeId> all;
  for (NodeId n = 0; n < static_cast<NodeId>(opt.nodes); ++n)
    all.push_back(n);
  std::uint64_t proposed = 0;

  // Warmup, then a clean measurement window (counters and latency reset).
  drive(rt, all, opt.objects, opt.inflight,
        rt.clock().now() + opt.warmup_ms * core::kMillisecond, &proposed, 0);
  const std::uint64_t base = rt.committed();
  rt.reset_measurement();
  const core::Time t0 = rt.clock().now();
  drive(rt, all, opt.objects, opt.inflight,
        t0 + opt.measure_ms * core::kMillisecond, &proposed, base);
  const core::Time t1 = rt.clock().now();
  const std::uint64_t committed = rt.committed();
  // Let the tail drain so the audit sees complete logs, then shut down.
  rt.await_committed(proposed - base, 2 * core::kSecond);
  rt.stop();

  const double seconds = core::to_seconds(t1 - t0);
  const double throughput =
      seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  std::printf("%s x%d loopback: %.0f committed/sec (%llu in %.2fs), "
              "median %.0f us\n",
              runtime::spec_protocol_name(opt.protocol).c_str(), opt.nodes,
              throughput, static_cast<unsigned long long>(committed),
              seconds,
              static_cast<double>(rt.commit_latency().median()) / 1000.0);

  if (opt.audit) {
    const auto report = rt.audit_consistency();
    std::printf("consistency audit: %s\n",
                report.ok ? "OK" : report.violation.c_str());
    if (!report.ok) return 1;
  }

  if (!opt.json_path.empty()) {
    stats::Json doc = stats::make_bench_doc("m2node_loopback", false);
    doc.set("protocol", runtime::spec_protocol_name(opt.protocol));
    doc.set("nodes", opt.nodes);
    doc.set("batching", opt.batching);
    doc.set("seed", opt.seed);
    doc.set("results", bench_results(rt, seconds, committed, proposed));
    doc.set("metrics", stats::export_registry(rt.merged_metrics()));
    if (!stats::write_json_file(opt.json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }

  if (opt.min_throughput > 0 && throughput < opt.min_throughput) {
    std::fprintf(stderr, "FAIL: %.0f committed/sec < gate %.0f\n",
                 throughput, opt.min_throughput);
    return 1;
  }
  return 0;
}

int run_serve(const Options& opt) {
  runtime::ClusterSpec spec;
  std::string error;
  if (!runtime::ClusterSpec::load(opt.spec_path, &spec, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (opt.local_nodes.empty()) {
    std::fprintf(stderr, "serve mode needs at least one --node\n");
    return 1;
  }
  for (const NodeId n : opt.local_nodes) {
    if (n >= spec.endpoints.size()) {
      std::fprintf(stderr, "--node %u out of range (cluster has %zu)\n", n,
                   spec.endpoints.size());
      return 1;
    }
  }

  spec.runtime.seed = opt.seed != 1 ? opt.seed : spec.runtime.seed;
  spec.runtime.audit = opt.audit;
  runtime::Runtime rt(spec.runtime,
                      std::make_unique<runtime::TcpTransport>(spec.endpoints,
                                                              spec.transport),
                      opt.local_nodes);
  if (!rt.start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }
  for (const NodeId n : opt.local_nodes)
    std::printf("serving node %u on %s:%u\n", n,
                spec.endpoints[n].host.c_str(), spec.endpoints[n].port);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const core::Time deadline =
      opt.duration_ms > 0 ? rt.clock().now() +
                                opt.duration_ms * core::kMillisecond
                          : core::kTimeNever;
  std::uint64_t proposed = 0;
  if (opt.load_inflight > 0) {
    drive(rt, opt.local_nodes, spec.objects_per_node > 0
                                   ? spec.objects_per_node
                                   : 1024,
          opt.load_inflight, deadline, &proposed, 0);
  } else {
    // Passive replica: participate until the deadline or a signal.
    while (!g_stop && rt.clock().now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const std::uint64_t committed = rt.committed();
  const double seconds = core::to_seconds(rt.clock().now());
  rt.await_committed(proposed, core::kSecond);
  rt.stop();

  std::printf("done: %llu proposed, %llu committed\n",
              static_cast<unsigned long long>(proposed),
              static_cast<unsigned long long>(committed));
  if (!opt.json_path.empty()) {
    stats::Json doc = stats::make_bench_doc("m2node_serve", false);
    doc.set("protocol", runtime::spec_protocol_name(spec.runtime.protocol));
    doc.set("nodes", static_cast<int>(spec.endpoints.size()));
    doc.set("results", bench_results(rt, seconds, committed, proposed));
    doc.set("metrics", stats::export_registry(rt.merged_metrics()));
    if (!stats::write_json_file(opt.json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) {
    usage();
    return 2;
  }
  return opt.loopback ? run_loopback_bench(opt) : run_serve(opt);
}
